// Discrete-event simulation engine.
//
// The engine owns the global "true" timeline of the simulated machine in
// nanoseconds.  Hardware components schedule events (timer expiry, SMI
// assertion, action completion) against it.  Events at the same timestamp
// are ordered by an explicit priority band first (so that, e.g., an SMI
// freeze at time T is applied before a work completion at T), then FIFO.
//
// Event cancellation is supported because preemption constantly invalidates
// in-flight completion events; cancelled events are skipped lazily at pop.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace hrt::sim {

/// Ordering bands for simultaneous events.  Lower runs first.
enum class EventBand : std::uint8_t {
  kSmi = 0,       // stop-the-world freezes preempt everything
  kHardware = 1,  // timer expiry, interrupt wire assertions
  kDefault = 2,   // completions, software callbacks
  kObserver = 3,  // measurement hooks that must see settled state
};

/// Opaque handle for cancelling a scheduled event.  Value 0 is "none".
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  void reset() { value = 0; }
};

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Nanos now() const { return now_; }

  /// Schedule `cb` at absolute time `when` (>= now).  Returns a handle that
  /// may be passed to cancel() until the event has run.
  EventId schedule_at(Nanos when, Callback cb,
                      EventBand band = EventBand::kDefault);

  /// Schedule `cb` after a relative delay (>= 0).
  EventId schedule_after(Nanos delay, Callback cb,
                         EventBand band = EventBand::kDefault) {
    return schedule_at(now_ + delay, std::move(cb), band);
  }

  /// Cancel a pending event.  Safe to call with an already-run or invalid id
  /// (it becomes a no-op).
  void cancel(EventId id);

  /// Run events until the queue is empty or `t_end` is passed.  Events at
  /// exactly t_end still run.  Returns the number of events executed.
  std::uint64_t run_until(Nanos t_end);

  /// Run until the queue drains entirely.
  std::uint64_t run_all();

  /// Execute exactly one event if present.  Returns false if queue empty.
  bool step();

  [[nodiscard]] bool empty() const {
    return queue_.size() == cancelled_.size();
  }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// If an event callback throws, the exception propagates out of run_*;
  /// the engine remains usable.

 private:
  struct Event {
    Nanos when;
    std::uint8_t band;
    std::uint64_t seq;  // FIFO tie-break
    std::uint64_t id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.band != b.band) return a.band > b.band;
      return a.seq > b.seq;
    }
  };

  Nanos now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace hrt::sim
