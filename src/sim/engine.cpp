#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "sim/sharded_engine.hpp"

namespace hrt::sim {

Engine::Engine() {
  slot_head_.fill(kNil);
  occupied_.fill(0);
  pool_.reserve(64);
  ready_.reserve(64);
  far_.reserve(64);
}

bool Engine::ready_after(std::uint32_t a, std::uint32_t b) const {
  const Node& na = pool_[a];
  const Node& nb = pool_[b];
  if (na.when != nb.when) return na.when > nb.when;
  if (na.band != nb.band) return na.band > nb.band;
  return na.seq > nb.seq;
}

bool Engine::far_after(std::uint32_t a, std::uint32_t b) const {
  // Ties need no band/seq resolution here: far events are migrated into the
  // wheel and finally ordered in the ready heap.
  return pool_[a].when > pool_[b].when;
}

void Engine::ready_push(std::uint32_t idx) {
  ready_.push_back(idx);
  std::push_heap(ready_.begin(), ready_.end(),
                 [this](std::uint32_t a, std::uint32_t b) {
                   return ready_after(a, b);
                 });
}

std::uint32_t Engine::ready_pop() {
  std::pop_heap(ready_.begin(), ready_.end(),
                [this](std::uint32_t a, std::uint32_t b) {
                  return ready_after(a, b);
                });
  const std::uint32_t idx = ready_.back();
  ready_.pop_back();
  return idx;
}

void Engine::far_push(std::uint32_t idx) {
  far_.push_back(idx);
  std::push_heap(far_.begin(), far_.end(),
                 [this](std::uint32_t a, std::uint32_t b) {
                   return far_after(a, b);
                 });
}

std::uint32_t Engine::far_pop() {
  std::pop_heap(far_.begin(), far_.end(),
                [this](std::uint32_t a, std::uint32_t b) {
                  return far_after(a, b);
                });
  const std::uint32_t idx = far_.back();
  far_.pop_back();
  return idx;
}

std::uint32_t Engine::alloc_node() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = pool_[idx].next;
    return idx;
  }
  if (pool_.size() >= static_cast<std::size_t>(kNil)) {
    throw std::length_error("Engine: event pool exhausted");
  }
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void Engine::free_node(std::uint32_t idx) {
  Node& n = pool_[idx];
  n.cb.reset();
  n.loc = Loc::kFree;
  n.cancelled = false;
  ++n.gen;  // invalidate outstanding EventIds for this slot
  n.prev = kNil;
  n.next = free_head_;
  free_head_ = idx;
}

void Engine::link_wheel(std::uint32_t idx) {
  Node& n = pool_[idx];
  const auto s =
      static_cast<std::uint32_t>((n.when >> kSlotShift) & kSlotMask);
  n.prev = kNil;
  n.next = slot_head_[s];
  if (n.next != kNil) pool_[n.next].prev = idx;
  slot_head_[s] = idx;
  occupied_[s >> 6] |= std::uint64_t{1} << (s & 63);
  n.loc = Loc::kWheel;
  ++wheel_count_;
}

void Engine::unlink_wheel(std::uint32_t idx) {
  Node& n = pool_[idx];
  const auto s =
      static_cast<std::uint32_t>((n.when >> kSlotShift) & kSlotMask);
  if (n.prev != kNil) {
    pool_[n.prev].next = n.next;
  } else {
    slot_head_[s] = n.next;
  }
  if (n.next != kNil) pool_[n.next].prev = n.prev;
  if (slot_head_[s] == kNil) {
    occupied_[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
  }
  --wheel_count_;
}

void Engine::drain_slot(std::uint32_t slot, Nanos /*slot_start*/) {
  std::uint32_t idx = slot_head_[slot];
  slot_head_[slot] = kNil;
  occupied_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  while (idx != kNil) {
    const std::uint32_t next = pool_[idx].next;
    pool_[idx].loc = Loc::kReady;
    ready_push(idx);
    --wheel_count_;
    idx = next;
  }
}

std::uint32_t Engine::find_occupied_from(std::uint32_t slot) const {
  constexpr std::uint32_t kWords = kNumSlots / 64;
  std::uint32_t w = slot >> 6;
  std::uint64_t word = occupied_[w] & (~std::uint64_t{0} << (slot & 63));
  // One extra iteration so the starting word is re-checked in full: bits
  // below `slot` are circularly the furthest slots in the window.
  for (std::uint32_t i = 0; i <= kWords; ++i) {
    if (word != 0) {
      return (w << 6) + static_cast<std::uint32_t>(std::countr_zero(word));
    }
    w = (w + 1) & (kWords - 1);
    word = occupied_[w];
  }
  return kNil;
}

EventId Engine::schedule_at(Nanos when, Callback cb, EventBand band) {
  return schedule_impl(when, (*seq_ptr_)++, std::move(cb), band);
}

EventId Engine::schedule_impl(Nanos when, std::uint64_t seq, Callback cb,
                              EventBand band) {
  if (when < *now_ptr_) {
    throw std::logic_error("Engine::schedule_at: time in the past");
  }
  const std::uint32_t idx = alloc_node();
  Node& n = pool_[idx];
  n.when = when;
  n.seq = seq;
  n.band = static_cast<std::uint8_t>(band);
  n.cancelled = false;
  n.cb = std::move(cb);
  ++live_count_;
  if (owner_ != nullptr && when < commit_horizon_) {
    // Scheduled from a callback inside the owner's in-flight commit window.
    // The containers for [T, horizon) were already drained during staging,
    // so placing the node there would silently skip it; instead it is born
    // kStaged and handed straight to the owner's late-event merge.
    n.loc = Loc::kStaged;
    owner_->note_late(shard_index_, idx, n.gen, when, n.band, seq);
    return EventId{encode(idx, n.gen)};
  }
  if (when < wheel_base_) {
    // Inside the already-drained region (e.g. scheduled from a callback for
    // "now"); goes straight to the ready heap.
    n.loc = Loc::kReady;
    ready_push(idx);
  } else if (when < wheel_base_ + kSpanNs) {
    link_wheel(idx);
  } else {
    n.loc = Loc::kFar;
    far_push(idx);
  }
  if (owner_ != nullptr) owner_->note_schedule(shard_index_, when);
  return EventId{encode(idx, n.gen)};
}

void Engine::cancel(EventId id) {
  if (!id.valid()) return;
  const auto idx = static_cast<std::uint32_t>((id.value & 0xFFFFFFFFu) - 1);
  const auto gen = static_cast<std::uint32_t>(id.value >> 32);
  if (idx >= pool_.size()) return;
  Node& n = pool_[idx];
  if (n.gen != gen || n.loc == Loc::kFree || n.cancelled) return;
  --live_count_;
  if (n.loc == Loc::kWheel) {
    // O(1): unlink from the slot list and reclaim immediately.
    unlink_wheel(idx);
    free_node(idx);
  } else {
    // Heap-resident (far or ready) or staged for an owner's commit window:
    // tombstone, reclaimed lazily when the pop/merge reaches it.
    n.cancelled = true;
    n.cb.reset();  // release captured resources eagerly
  }
}

bool Engine::refill_ready() {
  if (live_count_ == 0) return false;
  for (;;) {
    if (wheel_count_ == 0) {
      // Every live event is in the far heap (the caller drained ready).
      // Purge tombstones and jump the window to the earliest far event.
      while (!far_.empty() && pool_[far_.front()].cancelled) {
        free_node(far_pop());
      }
      // Reachable despite live_count_ > 0 when the only live nodes are
      // kStaged (extracted by an owner mid-commit): nothing left to drain.
      if (far_.empty()) return false;
      wheel_base_ = pool_[far_.front()].when & ~(kSlotNs - 1);
    }
    // Migrate far events that fall inside the (possibly advanced) window.
    while (!far_.empty()) {
      const std::uint32_t top = far_.front();
      if (pool_[top].cancelled) {
        free_node(far_pop());
        continue;
      }
      if (pool_[top].when >= wheel_base_ + kSpanNs) break;
      far_pop();
      link_wheel(top);
    }
    if (wheel_count_ == 0) continue;
    const auto base_slot =
        static_cast<std::uint32_t>((wheel_base_ >> kSlotShift) & kSlotMask);
    const std::uint32_t s = find_occupied_from(base_slot);
    assert(s != kNil);
    const Nanos slot_start =
        wheel_base_ +
        static_cast<Nanos>((s - base_slot) & kSlotMask) * kSlotNs;
    drain_slot(s, slot_start);
    wheel_base_ = slot_start + kSlotNs;
    // Wheel nodes are never tombstoned, so ready now holds a live event.
    return true;
  }
}

void Engine::purge_cancelled_ready_top() {
  while (!ready_.empty() && pool_[ready_.front()].cancelled) {
    free_node(ready_pop());
  }
}

Nanos Engine::stage_until(Nanos horizon, std::vector<std::uint32_t>& out) {
  for (;;) {
    purge_cancelled_ready_top();
    if (ready_.empty() && !refill_ready()) return kNoEvent;
    purge_cancelled_ready_top();
    if (ready_.empty()) continue;  // defensive; refill yields a live event
    const std::uint32_t top = ready_.front();
    if (pool_[top].when >= horizon) return pool_[top].when;
    const std::uint32_t idx = ready_pop();
    pool_[idx].loc = Loc::kStaged;
    out.push_back(idx);
  }
}

Callback Engine::take_staged(std::uint32_t idx) {
  Node& n = pool_[idx];
  assert(n.loc == Loc::kStaged && !n.cancelled);
  Callback cb = std::move(n.cb);
  --live_count_;
  ++executed_;
  free_node(idx);
  return cb;
}

void Engine::free_staged_cancelled(std::uint32_t idx) {
  assert(pool_[idx].loc == Loc::kStaged && pool_[idx].cancelled);
  // live_count_ was already decremented by cancel().
  free_node(idx);
}

bool Engine::step() {
  if (owner_ != nullptr) return owner_->step();
  purge_cancelled_ready_top();
  if (ready_.empty() && !refill_ready()) return false;
  purge_cancelled_ready_top();
  const std::uint32_t idx = ready_pop();
  Node& n = pool_[idx];
  assert(n.when >= now_);
  now_ = n.when;
  Callback cb = std::move(n.cb);
  --live_count_;
  free_node(idx);
  ++executed_;
  cb();
  return true;
}

std::uint64_t Engine::run_until(Nanos t_end) {
  if (owner_ != nullptr) return owner_->run_until(t_end);
  std::uint64_t n = 0;
  for (;;) {
    purge_cancelled_ready_top();
    if (ready_.empty() && !refill_ready()) break;
    purge_cancelled_ready_top();
    if (pool_[ready_.front()].when > t_end) break;
    if (step()) ++n;
  }
  // Advance the clock to the horizon even if the queue ran dry earlier.
  if (now_ < t_end) now_ = t_end;
  return n;
}

std::uint64_t Engine::run_all() {
  if (owner_ != nullptr) return owner_->run_all();
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

bool Engine::empty() const {
  if (owner_ != nullptr) return owner_->empty();
  return live_count_ == 0;
}

std::uint64_t Engine::events_executed() const {
  if (owner_ != nullptr) return owner_->events_executed();
  return executed_;
}

std::uint64_t Engine::pending_count() const {
  if (owner_ != nullptr) return owner_->pending_count();
  return live_count_;
}

}  // namespace hrt::sim
