// Small statistics helpers used by the evaluation harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace hrt::sim {

/// Streaming mean/variance/min/max (Welford).  O(1) memory.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    return n_ ? min_ : 0.0;
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : 0.0;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample collector with percentile queries.  Keeps all samples.
class Samples {
 public:
  void add(double x) {
    data_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return data_.size(); }

  [[nodiscard]] double mean() const {
    if (data_.empty()) return 0.0;
    double s = 0.0;
    for (double x : data_) s += x;
    return s / static_cast<double>(data_.size());
  }

  [[nodiscard]] double stddev() const {
    if (data_.size() < 2) return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double x : data_) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(data_.size() - 1));
  }

  /// p in [0, 100].  Nearest-rank on the sorted data.
  [[nodiscard]] double percentile(double p) {
    if (data_.empty()) return 0.0;
    sort();
    const double rank = p / 100.0 * static_cast<double>(data_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, data_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return data_[lo] * (1.0 - frac) + data_[hi] * frac;
  }

  [[nodiscard]] double min() {
    sort();
    return data_.empty() ? 0.0 : data_.front();
  }
  [[nodiscard]] double max() {
    sort();
    return data_.empty() ? 0.0 : data_.back();
  }

  [[nodiscard]] const std::vector<double>& values() const { return data_; }

 private:
  void sort() {
    if (!sorted_) {
      std::sort(data_.begin(), data_.end());
      sorted_ = true;
    }
  }

  std::vector<double> data_;
  bool sorted_ = true;
};

}  // namespace hrt::sim
