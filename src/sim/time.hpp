// Time types and cycle<->nanosecond conversion.
//
// Following the paper (section 3.3), all wall-clock time in the system is kept
// in signed 64-bit nanoseconds: "Time is measured throughout in units of
// nanoseconds stored in 64 bit integers."  Cycle counts are what the simulated
// hardware (TSC, APIC) exposes; the conversion is owned by a Frequency object
// so that per-machine clock rates (Phi @ 1.3 GHz, R415 @ 2.2 GHz) are explicit.
#pragma once

#include <cstdint>

namespace hrt::sim {

/// Wall-clock time or duration in nanoseconds.
using Nanos = std::int64_t;

/// A count of processor clock cycles (TSC units).
using Cycles = std::int64_t;

inline constexpr Nanos kNanosPerMicro = 1'000;
inline constexpr Nanos kNanosPerMilli = 1'000'000;
inline constexpr Nanos kNanosPerSecond = 1'000'000'000;

constexpr Nanos micros(std::int64_t us) { return us * kNanosPerMicro; }
constexpr Nanos millis(std::int64_t ms) { return ms * kNanosPerMilli; }
constexpr Nanos seconds(std::int64_t s) { return s * kNanosPerSecond; }

/// A fixed clock frequency.  Supports round-trip conversion between cycle
/// counts and nanoseconds.  Conversions round to nearest, except where a
/// caller explicitly needs the paper's conservative ("never later") rounding,
/// for which floor/ceil variants are provided.
class Frequency {
 public:
  constexpr explicit Frequency(std::int64_t hz) : hz_(hz) {}

  [[nodiscard]] constexpr std::int64_t hz() const { return hz_; }
  [[nodiscard]] constexpr double ghz() const {
    return static_cast<double>(hz_) / 1e9;
  }

  /// Cycles -> nanoseconds, rounded to nearest (symmetric for negatives,
  /// which calibration offsets can be).
  [[nodiscard]] constexpr Nanos cycles_to_ns(Cycles c) const {
    // c * 1e9 / hz, done in 128-bit to avoid overflow for large counts.
    const __int128 num = static_cast<__int128>(c) * kNanosPerSecond;
    return static_cast<Nanos>(div_nearest(num, hz_));
  }

  /// Nanoseconds -> cycles, rounded to nearest.
  [[nodiscard]] constexpr Cycles ns_to_cycles(Nanos ns) const {
    const __int128 num = static_cast<__int128>(ns) * hz_;
    return static_cast<Cycles>(div_nearest(num, kNanosPerSecond));
  }

  /// Nanoseconds -> cycles, rounded down (conservative countdowns: a timer
  /// programmed with the floor fires earlier, never later).
  [[nodiscard]] constexpr Cycles ns_to_cycles_floor(Nanos ns) const {
    const __int128 num = static_cast<__int128>(ns) * hz_;
    return static_cast<Cycles>(num / kNanosPerSecond);
  }

  /// Cycles -> nanoseconds, rounded up.
  [[nodiscard]] constexpr Nanos cycles_to_ns_ceil(Cycles c) const {
    const __int128 num = static_cast<__int128>(c) * kNanosPerSecond;
    return static_cast<Nanos>((num + hz_ - 1) / hz_);
  }

 private:
  static constexpr __int128 div_nearest(__int128 num, std::int64_t den) {
    if (num >= 0) return (num + den / 2) / den;
    return -((-num + den / 2) / den);
  }

  std::int64_t hz_;
};

}  // namespace hrt::sim
