// Event tracing.
//
// The paper verifies hard real-time behavior *externally*: the scheduler
// toggles pins on a parallel port which an oscilloscope monitors (section
// 5.2).  In the simulated machine, the equivalent signal path is a trace of
// timestamped channel transitions; the ScopeAnalyzer (scope.hpp) then plays
// the role of the oscilloscope.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace hrt::sim {

/// What a trace record describes.
enum class TraceKind : std::uint8_t {
  kPin,            // GPIO pin level change (value = new level)
  kThreadActive,   // thread dispatched (value = thread id)
  kThreadInactive, // thread descheduled (value = thread id)
  kIrqEnter,       // interrupt handler entry (value = vector)
  kIrqExit,        // interrupt handler exit (value = vector)
  kSchedPass,      // scheduler pass executed (value = pass sequence)
  kSwitch,         // context switch performed (value = new thread id)
  kCustom,         // benchmark-defined
};

struct TraceRecord {
  Nanos time;
  std::uint32_t cpu;
  TraceKind kind;
  std::int64_t value;
};

/// Append-only trace buffer.  Disabled by default; recording every scheduler
/// event in a 255-CPU run would swamp memory, so benchmarks enable it only
/// on the CPUs/channels they observe.
class Trace {
 public:
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(Nanos t, std::uint32_t cpu, TraceKind kind, std::int64_t value) {
    if (enabled_) {
      records_.push_back(TraceRecord{t, cpu, kind, value});
    }
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  void clear() { records_.clear(); }

  /// All records of one kind (optionally restricted to one cpu; cpu == ~0u
  /// means any).
  [[nodiscard]] std::vector<TraceRecord> filter(
      TraceKind kind, std::uint32_t cpu = ~0u) const {
    std::vector<TraceRecord> out;
    for (const auto& r : records_) {
      if (r.kind == kind && (cpu == ~0u || r.cpu == cpu)) out.push_back(r);
    }
    return out;
  }

 private:
  bool enabled_ = false;
  std::vector<TraceRecord> records_;
};

}  // namespace hrt::sim
