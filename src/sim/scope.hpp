// ScopeAnalyzer: the simulated stand-in for the Rigol DS1054Z of section 5.2.
//
// The analyzer consumes a sequence of (time, level) transitions for one
// logical channel and derives the quantities one reads off a persistence
// display: pulse widths, periods, duty cycle, and "fuzz" (the spread of
// repeated edges, which on the real scope appears as trace blur).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace hrt::sim {

struct Edge {
  Nanos time;
  bool rising;
};

struct Pulse {
  Nanos start;
  Nanos width;
};

class ScopeAnalyzer {
 public:
  /// Record a transition to `level` at time `t`.  Transitions must be fed in
  /// nondecreasing time order; same-level repeats are ignored.
  void transition(Nanos t, bool level) {
    if (has_level_ && level == level_) return;
    if (has_level_) {
      edges_.push_back(Edge{t, level});
      if (!level && high_since_ >= 0) {
        pulses_.push_back(Pulse{high_since_, t - high_since_});
      }
    }
    if (level) high_since_ = t;
    level_ = level;
    has_level_ = true;
  }

  [[nodiscard]] const std::vector<Pulse>& pulses() const { return pulses_; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Statistics over high-pulse widths.  The paper's "sharp" traces have
  /// near-zero width spread; "fuzzy" ones (scheduler, IRQ handler) do not.
  [[nodiscard]] RunningStats pulse_width_stats() const {
    RunningStats s;
    for (const auto& p : pulses_) s.add(static_cast<double>(p.width));
    return s;
  }

  /// Statistics over rising-edge-to-rising-edge periods.
  [[nodiscard]] RunningStats period_stats() const {
    RunningStats s;
    Nanos prev = -1;
    for (const auto& e : edges_) {
      if (!e.rising) continue;
      if (prev >= 0) s.add(static_cast<double>(e.time - prev));
      prev = e.time;
    }
    return s;
  }

  /// Fraction of observed time the channel was high.
  [[nodiscard]] double duty_cycle() const {
    if (edges_.size() < 2) return 0.0;
    const Nanos span = edges_.back().time - edges_.front().time;
    if (span <= 0) return 0.0;
    Nanos high = 0;
    for (const auto& p : pulses_) {
      if (p.start >= edges_.front().time) high += p.width;
    }
    return static_cast<double>(high) / static_cast<double>(span);
  }

 private:
  bool has_level_ = false;
  bool level_ = false;
  Nanos high_since_ = -1;
  std::vector<Edge> edges_;
  std::vector<Pulse> pulses_;
};

}  // namespace hrt::sim
