// Fixed-bin histogram with terminal rendering, used to regenerate the
// paper's distribution figures (e.g., Figure 3, TSC offsets).
#pragma once

#include <cstdint>
#include <iomanip>
#include <ostream>
#include <string>
#include <vector>

namespace hrt::sim {

class Histogram {
 public:
  /// Bins cover [lo, hi); values outside are counted in under/overflow.
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  void add(double x) {
    ++total_;
    if (x < lo_) {
      ++underflow_;
      return;
    }
    if (x >= hi_) {
      ++overflow_;
      return;
    }
    const auto idx = static_cast<std::size_t>(
        (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
    ++counts_[idx < counts_.size() ? idx : counts_.size() - 1];
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const {
    return counts_[i];
  }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }
  [[nodiscard]] double bin_hi(std::size_t i) const { return bin_lo(i + 1); }

  /// q in [0, 1]: quantile by cumulative walk with linear interpolation
  /// inside the winning bin.  Underflow samples resolve to lo_ and overflow
  /// samples to hi_ (the histogram does not retain their exact values), so
  /// tail quantiles are clamped to the covered range.
  [[nodiscard]] double quantile(double q) const {
    if (total_ == 0) return lo_;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double rank = q * static_cast<double>(total_ - 1);
    double cum = static_cast<double>(underflow_);
    if (rank < cum) return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      const double c = static_cast<double>(counts_[i]);
      if (c == 0.0) continue;
      if (rank < cum + c) {
        const double frac = (rank - cum + 0.5) / c;
        return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
      }
      cum += c;
    }
    return hi_;
  }

  /// Render as an ASCII bar chart, one bin per row.
  void print(std::ostream& os, const std::string& unit,
             int bar_width = 50) const {
    std::uint64_t peak = 1;
    for (auto c : counts_) peak = c > peak ? c : peak;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      const int len = static_cast<int>(
          static_cast<double>(counts_[i]) * bar_width /
          static_cast<double>(peak));
      os << std::setw(10) << static_cast<std::int64_t>(bin_lo(i)) << "-"
         << std::setw(8) << static_cast<std::int64_t>(bin_hi(i)) << " " << unit
         << " |" << std::string(static_cast<std::size_t>(len), '#') << " "
         << counts_[i] << "\n";
    }
    if (underflow_ != 0) os << "  underflow: " << underflow_ << "\n";
    if (overflow_ != 0) os << "  overflow:  " << overflow_ << "\n";
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace hrt::sim
