// The original binary-heap event engine, kept as a comparison baseline.
//
// This is the seed implementation of the discrete-event core:
// `std::priority_queue` ordered by (when, band, seq), cancellation via an
// `std::unordered_set` of tombstoned ids that are skipped lazily at pop, and
// `std::function` callbacks (one heap allocation per event with a capture
// larger than two pointers).  The production `Engine` (sim/engine.hpp)
// replaced all three; this class exists so `bench/micro_engine` can print
// both numbers side by side and so the engine stress test can cross-check
// the two implementations against each other.
//
// One fix relative to the seed: `empty()` used to compare queue size against
// tombstone count, which drifts permanently if `cancel()` is ever called
// with an id that already ran.  A live-id set makes it exact.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace hrt::sim {

class LegacyEngine {
 public:
  using Callback = std::function<void()>;

  LegacyEngine() = default;
  LegacyEngine(const LegacyEngine&) = delete;
  LegacyEngine& operator=(const LegacyEngine&) = delete;

  [[nodiscard]] Nanos now() const { return now_; }

  EventId schedule_at(Nanos when, Callback cb,
                      EventBand band = EventBand::kDefault);

  EventId schedule_after(Nanos delay, Callback cb,
                         EventBand band = EventBand::kDefault) {
    return schedule_at(now_ + delay, std::move(cb), band);
  }

  void cancel(EventId id);

  std::uint64_t run_until(Nanos t_end);
  std::uint64_t run_all();
  bool step();

  [[nodiscard]] bool empty() const { return live_.empty(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    Nanos when;
    std::uint8_t band;
    std::uint64_t seq;  // FIFO tie-break
    std::uint64_t id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.band != b.band) return a.band > b.band;
      return a.seq > b.seq;
    }
  };

  Nanos now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<std::uint64_t> live_;  // scheduled, not run or cancelled
};

}  // namespace hrt::sim
