// Engine microbenchmark: timer-wheel Engine vs the seed priority-queue
// LegacyEngine on a mixed schedule/cancel/run workload.
//
// The workload models the simulator's hot path under a preemption-heavy RT
// load: completion events are scheduled a few microseconds to a few
// milliseconds out, and roughly half are cancelled before they fire (a
// preemption invalidates the in-flight completion).  Both engines execute a
// bit-identical operation sequence (same Rng seed), so the events/sec ratio
// is a pure implementation comparison.
//
// Output: human-readable table plus a machine-readable JSON record
// (--json=PATH, default BENCH_engine.json) with events/sec and sampled
// p50/p99 schedule_at/cancel latencies for both engines.  See
// docs/PERFORMANCE.md for the schema.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "sim/engine.hpp"
#include "sim/legacy_engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace {

using hrt::sim::EventId;
using hrt::sim::Nanos;

struct EngineResult {
  double wall_s = 0;
  std::uint64_t executed = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t cancels = 0;
  double events_per_sec = 0;  // executed events / wall
  double ops_per_sec = 0;     // schedule + cancel + execute / wall
  double sched_p50_ns = 0, sched_p99_ns = 0;
  double cancel_p50_ns = 0, cancel_p99_ns = 0;
};

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Delay distribution: mostly wheel-window (timer/completion scale), a tail
/// of device/SMI-scale events that exercise the far heap.
inline Nanos pick_delay(hrt::sim::Rng& rng) {
  const double p = rng.next_double();
  if (p < 0.75) return rng.uniform(1, hrt::sim::micros(200));
  if (p < 0.95) {
    return rng.uniform(hrt::sim::micros(200), hrt::sim::millis(4));
  }
  return rng.uniform(hrt::sim::millis(4), hrt::sim::millis(40));
}

template <typename Engine>
EngineResult run_mixed(std::uint64_t target_events, std::uint64_t seed) {
  Engine eng;
  hrt::sim::Rng rng(seed);
  std::vector<EventId> inflight;
  inflight.reserve(4096);

  std::uint64_t fired = 0;
  hrt::sim::Samples sched_lat, cancel_lat;
  EngineResult r;

  bench::Stopwatch wall;
  while (fired < target_events) {
    // Schedule a burst of completion events.
    for (int b = 0; b < 16; ++b) {
      const Nanos delay = pick_delay(rng);
      EventId id;
      if ((r.scheduled & 127) == 0) {
        const std::uint64_t t0 = now_ns();
        id = eng.schedule_after(delay, [&fired] { ++fired; });
        sched_lat.add(static_cast<double>(now_ns() - t0));
      } else {
        id = eng.schedule_after(delay, [&fired] { ++fired; });
      }
      ++r.scheduled;
      inflight.push_back(id);
    }
    // Preemption: cancel roughly half of the in-flight completions.  Some
    // picks are stale (already fired) — that must be a cheap no-op too.
    for (int c = 0; c < 8 && !inflight.empty(); ++c) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(inflight.size()) - 1));
      const EventId id = inflight[pick];
      inflight[pick] = inflight.back();
      inflight.pop_back();
      if ((r.cancels & 127) == 0) {
        const std::uint64_t t0 = now_ns();
        eng.cancel(id);
        cancel_lat.add(static_cast<double>(now_ns() - t0));
      } else {
        eng.cancel(id);
      }
      ++r.cancels;
    }
    eng.run_until(eng.now() + hrt::sim::micros(50));
    // Periodically drop stale handles so the pick pool stays bounded.
    if (inflight.size() > 65536) {
      inflight.erase(inflight.begin(),
                     inflight.begin() +
                         static_cast<std::ptrdiff_t>(inflight.size() / 2));
    }
  }
  r.wall_s = wall.seconds();
  r.executed = eng.events_executed();
  r.events_per_sec = static_cast<double>(r.executed) / r.wall_s;
  r.ops_per_sec =
      static_cast<double>(r.scheduled + r.cancels + r.executed) / r.wall_s;
  r.sched_p50_ns = sched_lat.percentile(50);
  r.sched_p99_ns = sched_lat.percentile(99);
  r.cancel_p50_ns = cancel_lat.percentile(50);
  r.cancel_p99_ns = cancel_lat.percentile(99);
  return r;
}

void print_result(const char* name, const EngineResult& r) {
  std::printf("%-8s %10.3fs  %12.0f ev/s %12.0f op/s  sched p50/p99 %5.0f/%5.0f ns"
              "  cancel p50/p99 %5.0f/%5.0f ns\n",
              name, r.wall_s, r.events_per_sec, r.ops_per_sec, r.sched_p50_ns,
              r.sched_p99_ns, r.cancel_p50_ns, r.cancel_p99_ns);
}

std::string result_json(const EngineResult& r) {
  bench::JsonObject j;
  j.field("wall_s", r.wall_s);
  j.field("executed", r.executed);
  j.field("scheduled", r.scheduled);
  j.field("cancels", r.cancels);
  j.field("events_per_sec", r.events_per_sec);
  j.field("ops_per_sec", r.ops_per_sec);
  j.field("schedule_p50_ns", r.sched_p50_ns);
  j.field("schedule_p99_ns", r.sched_p99_ns);
  j.field("cancel_p50_ns", r.cancel_p50_ns);
  j.field("cancel_p99_ns", r.cancel_p99_ns);
  return j.str();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::parse_args(argc, argv);
  if (args.json.empty()) args.json = "BENCH_engine.json";
  const std::uint64_t target = args.full ? 4'000'000 : 800'000;

  bench::header("micro_engine: timer-wheel Engine vs priority-queue "
                "LegacyEngine",
                "mixed schedule/cancel workload; wheel should be >= 3x "
                "events/sec");
  std::printf("target events per engine: %llu (seed %llu)\n\n",
              (unsigned long long)target, (unsigned long long)args.seed);

  // Warm-up pass (allocators, caches), then the measured pass.
  (void)run_mixed<hrt::sim::Engine>(target / 8, args.seed);
  (void)run_mixed<hrt::sim::LegacyEngine>(target / 8, args.seed);

  const EngineResult wheel = run_mixed<hrt::sim::Engine>(target, args.seed);
  const EngineResult legacy =
      run_mixed<hrt::sim::LegacyEngine>(target, args.seed);
  print_result("wheel", wheel);
  print_result("legacy", legacy);

  const double speedup = wheel.events_per_sec / legacy.events_per_sec;
  std::printf("\nspeedup (events/sec, wheel / legacy): %.2fx\n", speedup);
  bench::shape_check("wheel engine >= 3x legacy events/sec", speedup >= 3.0);

  bench::JsonObject j;
  j.field("benchmark", std::string("micro_engine"));
  j.field("mode", std::string(args.full ? "full" : "quick"));
  j.field("seed", static_cast<std::uint64_t>(args.seed));
  j.field("target_events", static_cast<std::uint64_t>(target));
  j.raw("wheel", result_json(wheel));
  j.raw("legacy", result_json(legacy));
  j.field("speedup_events_per_sec", speedup);
  if (!j.write_file(args.json)) {
    std::fprintf(stderr, "warning: cannot write %s\n", args.json.c_str());
    return 1;
  }
  std::printf("wrote %s\n", args.json.c_str());
  return 0;
}
