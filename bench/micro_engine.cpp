// Engine microbenchmark: timer-wheel Engine vs the seed priority-queue
// LegacyEngine on a mixed schedule/cancel/run workload.
//
// The workload models the simulator's hot path under a preemption-heavy RT
// load: completion events are scheduled a few microseconds to a few
// milliseconds out, and roughly half are cancelled before they fire (a
// preemption invalidates the in-flight completion).  Both engines execute a
// bit-identical operation sequence (same Rng seed), so the events/sec ratio
// is a pure implementation comparison.
//
// Output: human-readable table plus a machine-readable JSON record
// (--json=PATH, default BENCH_engine.json) with events/sec and sampled
// p50/p99 schedule_at/cancel latencies for both engines.  See
// docs/PERFORMANCE.md for the schema.
//
// Second cell: sharded-engine scaling.  A 4096-CPU machine config (4096
// per-CPU domains + the global domain, lookahead = the phi spec's IPI
// latency) runs per-domain self-rescheduling timer chains under the
// parallel-commit sim::ShardedEngine at host threads {1,2,4,8}; events/sec
// per thread count goes to BENCH_engine_scaling.json, and run_perf.sh gates
// on >= 2x at 8 threads over 1 on hosts with >= 8 cores.
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "common.hpp"
#include "sim/engine.hpp"
#include "sim/legacy_engine.hpp"
#include "sim/rng.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/stats.hpp"

namespace {

using hrt::sim::EventId;
using hrt::sim::Nanos;

struct EngineResult {
  double wall_s = 0;
  std::uint64_t executed = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t cancels = 0;
  double events_per_sec = 0;  // executed events / wall
  double ops_per_sec = 0;     // schedule + cancel + execute / wall
  double sched_p50_ns = 0, sched_p99_ns = 0;
  double cancel_p50_ns = 0, cancel_p99_ns = 0;
};

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Delay distribution: mostly wheel-window (timer/completion scale), a tail
/// of device/SMI-scale events that exercise the far heap.
inline Nanos pick_delay(hrt::sim::Rng& rng) {
  const double p = rng.next_double();
  if (p < 0.75) return rng.uniform(1, hrt::sim::micros(200));
  if (p < 0.95) {
    return rng.uniform(hrt::sim::micros(200), hrt::sim::millis(4));
  }
  return rng.uniform(hrt::sim::millis(4), hrt::sim::millis(40));
}

template <typename Engine>
EngineResult run_mixed(std::uint64_t target_events, std::uint64_t seed) {
  Engine eng;
  hrt::sim::Rng rng(seed);
  std::vector<EventId> inflight;
  inflight.reserve(4096);

  std::uint64_t fired = 0;
  hrt::sim::Samples sched_lat, cancel_lat;
  EngineResult r;

  bench::Stopwatch wall;
  while (fired < target_events) {
    // Schedule a burst of completion events.
    for (int b = 0; b < 16; ++b) {
      const Nanos delay = pick_delay(rng);
      EventId id;
      if ((r.scheduled & 127) == 0) {
        const std::uint64_t t0 = now_ns();
        id = eng.schedule_after(delay, [&fired] { ++fired; });
        sched_lat.add(static_cast<double>(now_ns() - t0));
      } else {
        id = eng.schedule_after(delay, [&fired] { ++fired; });
      }
      ++r.scheduled;
      inflight.push_back(id);
    }
    // Preemption: cancel roughly half of the in-flight completions.  Some
    // picks are stale (already fired) — that must be a cheap no-op too.
    for (int c = 0; c < 8 && !inflight.empty(); ++c) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(inflight.size()) - 1));
      const EventId id = inflight[pick];
      inflight[pick] = inflight.back();
      inflight.pop_back();
      if ((r.cancels & 127) == 0) {
        const std::uint64_t t0 = now_ns();
        eng.cancel(id);
        cancel_lat.add(static_cast<double>(now_ns() - t0));
      } else {
        eng.cancel(id);
      }
      ++r.cancels;
    }
    eng.run_until(eng.now() + hrt::sim::micros(50));
    // Periodically drop stale handles so the pick pool stays bounded.
    if (inflight.size() > 65536) {
      inflight.erase(inflight.begin(),
                     inflight.begin() +
                         static_cast<std::ptrdiff_t>(inflight.size() / 2));
    }
  }
  r.wall_s = wall.seconds();
  r.executed = eng.events_executed();
  r.events_per_sec = static_cast<double>(r.executed) / r.wall_s;
  r.ops_per_sec =
      static_cast<double>(r.scheduled + r.cancels + r.executed) / r.wall_s;
  r.sched_p50_ns = sched_lat.percentile(50);
  r.sched_p99_ns = sched_lat.percentile(99);
  r.cancel_p50_ns = cancel_lat.percentile(50);
  r.cancel_p99_ns = cancel_lat.percentile(99);
  return r;
}

void print_result(const char* name, const EngineResult& r) {
  std::printf("%-8s %10.3fs  %12.0f ev/s %12.0f op/s  sched p50/p99 %5.0f/%5.0f ns"
              "  cancel p50/p99 %5.0f/%5.0f ns\n",
              name, r.wall_s, r.events_per_sec, r.ops_per_sec, r.sched_p50_ns,
              r.sched_p99_ns, r.cancel_p50_ns, r.cancel_p99_ns);
}

// ---- Sharded-engine scaling cell ----------------------------------------

struct ScaleCell {
  unsigned threads = 0;
  double wall_s = 0;
  std::uint64_t executed = 0;
  std::uint64_t windows = 0;
  double events_per_sec = 0;
  std::uint64_t checksum = 0;  // must match across thread counts
};

/// Shard-confined workload on a 4096-CPU machine shape: every domain runs a
/// self-rescheduling APIC-tick chain with a small deterministic compute
/// kernel, and occasionally kicks its neighbor with an IPI-latency-delayed
/// cross-domain post.  The checksum folds every domain's event history, so
/// equal checksums mean the run was bit-identical.
ScaleCell run_scaling_cell(unsigned threads, std::uint32_t domains,
                           Nanos lookahead, Nanos horizon) {
  using hrt::sim::ShardedEngine;
  ShardedEngine::Config cfg;
  cfg.shards = threads;
  cfg.domains = domains;
  cfg.lookahead = lookahead;
  cfg.commit = ShardedEngine::CommitMode::kParallel;
  ShardedEngine eng(cfg);

  struct alignas(64) DomainState {
    std::uint64_t x = 0;    // xorshift state
    std::uint64_t sum = 0;  // event-history accumulator
  };
  std::vector<DomainState> state(domains);
  for (std::uint32_t d = 0; d < domains; ++d) {
    state[d].x = 0x9e3779b97f4a7c15ull * (d + 1) | 1ull;
  }

  std::function<void(std::uint32_t, Nanos)> arm = [&](std::uint32_t d,
                                                      Nanos when) {
    eng.schedule_at(d, when, [&, d] {
      DomainState& st = state[d];
      std::uint64_t x = st.x;
      for (int i = 0; i < 32; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
      }
      st.x = x;
      st.sum += x;
      const Nanos now = eng.engine_for(d).now();
      arm(d, now + 1000 + 37 * static_cast<Nanos>(d % 64));
      if ((x & 15u) == 0) {
        const std::uint32_t dst = (d + 1) % domains;
        eng.post(d, dst, now + lookahead,
                 [&state, dst] { state[dst].sum += 0x2545f4914f6cdd1dull; });
      }
    });
  };
  for (std::uint32_t d = 0; d < domains; ++d) {
    arm(d, 100 + 13 * static_cast<Nanos>(d % 997));
  }

  ScaleCell c;
  c.threads = threads;
  bench::Stopwatch wall;
  eng.run_until(horizon);
  c.wall_s = wall.seconds();
  c.executed = eng.events_executed();
  c.windows = eng.windows_run();
  c.events_per_sec = static_cast<double>(c.executed) / c.wall_s;
  for (const DomainState& st : state) {
    c.checksum = c.checksum * 1099511628211ull + st.sum;
  }
  return c;
}

std::string cell_json(const ScaleCell& c) {
  bench::JsonObject j;
  j.field("threads", static_cast<std::uint64_t>(c.threads));
  j.field("wall_s", c.wall_s);
  j.field("executed", c.executed);
  j.field("windows", c.windows);
  j.field("events_per_sec", c.events_per_sec);
  j.field("checksum", std::to_string(c.checksum));
  return j.str();
}

std::string result_json(const EngineResult& r) {
  bench::JsonObject j;
  j.field("wall_s", r.wall_s);
  j.field("executed", r.executed);
  j.field("scheduled", r.scheduled);
  j.field("cancels", r.cancels);
  j.field("events_per_sec", r.events_per_sec);
  j.field("ops_per_sec", r.ops_per_sec);
  j.field("schedule_p50_ns", r.sched_p50_ns);
  j.field("schedule_p99_ns", r.sched_p99_ns);
  j.field("cancel_p50_ns", r.cancel_p50_ns);
  j.field("cancel_p99_ns", r.cancel_p99_ns);
  return j.str();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::parse_args(argc, argv);
  if (args.json.empty()) args.json = "BENCH_engine.json";
  const std::uint64_t target = args.full ? 4'000'000 : 800'000;

  bench::header("micro_engine: timer-wheel Engine vs priority-queue "
                "LegacyEngine",
                "mixed schedule/cancel workload; wheel should be >= 3x "
                "events/sec");
  std::printf("target events per engine: %llu (seed %llu)\n\n",
              (unsigned long long)target, (unsigned long long)args.seed);

  // Warm-up pass (allocators, caches), then the measured pass.
  (void)run_mixed<hrt::sim::Engine>(target / 8, args.seed);
  (void)run_mixed<hrt::sim::LegacyEngine>(target / 8, args.seed);

  const EngineResult wheel = run_mixed<hrt::sim::Engine>(target, args.seed);
  const EngineResult legacy =
      run_mixed<hrt::sim::LegacyEngine>(target, args.seed);
  print_result("wheel", wheel);
  print_result("legacy", legacy);

  const double speedup = wheel.events_per_sec / legacy.events_per_sec;
  std::printf("\nspeedup (events/sec, wheel / legacy): %.2fx\n", speedup);
  bench::shape_check("wheel engine >= 3x legacy events/sec", speedup >= 3.0);

  bench::JsonObject j;
  j.field("benchmark", std::string("micro_engine"));
  j.field("mode", std::string(args.full ? "full" : "quick"));
  j.field("seed", static_cast<std::uint64_t>(args.seed));
  j.field("target_events", static_cast<std::uint64_t>(target));
  j.raw("wheel", result_json(wheel));
  j.raw("legacy", result_json(legacy));
  j.field("speedup_events_per_sec", speedup);
  if (!j.write_file(args.json)) {
    std::fprintf(stderr, "warning: cannot write %s\n", args.json.c_str());
    return 1;
  }
  std::printf("wrote %s\n", args.json.c_str());

  // ---- Sharded-engine scaling cell (BENCH_engine_scaling.json) ----------
  const hrt::hw::MachineSpec spec = hrt::hw::MachineSpec::phi();
  const std::uint32_t domains = 4096 + 1;  // 4096 CPUs + global domain
  const Nanos lookahead = spec.timer.ipi_latency_ns;
  const Nanos horizon = args.full ? hrt::sim::millis(2) : hrt::sim::micros(400);

  std::printf("\nsharded-engine scaling: %u domains, lookahead %lld ns, "
              "horizon %lld ns (host has %u cores)\n",
              domains, (long long)lookahead, (long long)horizon,
              std::thread::hardware_concurrency());

  // Warm-up (pool threads, allocators), then the measured sweep.
  (void)run_scaling_cell(2, domains, lookahead, horizon / 8);

  std::vector<ScaleCell> cells;
  std::printf("%8s %10s %12s %10s %10s\n", "threads", "wall (s)", "events/s",
              "windows", "vs 1thr");
  for (const unsigned t : {1u, 2u, 4u, 8u}) {
    cells.push_back(run_scaling_cell(t, domains, lookahead, horizon));
    const ScaleCell& c = cells.back();
    std::printf("%8u %10.3f %12.0f %10llu %9.2fx\n", c.threads, c.wall_s,
                c.events_per_sec, (unsigned long long)c.windows,
                c.events_per_sec / cells.front().events_per_sec);
    std::fflush(stdout);
  }

  bool deterministic = true;
  for (const ScaleCell& c : cells) {
    deterministic = deterministic && c.checksum == cells.front().checksum &&
                    c.executed == cells.front().executed;
  }
  const double scale8 =
      cells.back().events_per_sec / cells.front().events_per_sec;
  bench::shape_check("scaling runs bit-identical across thread counts",
                     deterministic);
  if (std::thread::hardware_concurrency() >= 8) {
    bench::shape_check("sharded engine >= 2x events/sec at 8 threads",
                       scale8 >= 2.0);
  } else {
    std::printf("[shape SKIP] host has < 8 cores; 8-thread speedup %.2fx "
                "not gated\n", scale8);
  }

  bench::JsonObject js;
  js.field("benchmark", std::string("micro_engine_scaling"));
  js.field("mode", std::string(args.full ? "full" : "quick"));
  js.field("domains", static_cast<std::uint64_t>(domains));
  js.field("lookahead_ns", static_cast<std::uint64_t>(lookahead));
  js.field("horizon_ns", static_cast<std::uint64_t>(horizon));
  std::string arr = "[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) arr += ", ";
    arr += cell_json(cells[i]);
  }
  arr += "]";
  js.raw("cells", arr);
  js.field("deterministic", static_cast<std::uint64_t>(deterministic ? 1 : 0));
  js.field("speedup_8_vs_1", scale8);
  if (!js.write_file("BENCH_engine_scaling.json")) {
    std::fprintf(stderr, "warning: cannot write BENCH_engine_scaling.json\n");
    return 1;
  }
  std::printf("wrote BENCH_engine_scaling.json\n");
  return deterministic ? 0 : 1;
}
