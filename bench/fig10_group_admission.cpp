// Figure 10: absolute group admission control costs on the Phi as a
// function of the number of threads in the group.
//
// "The average time per step grows linearly with the number of threads
// because we have opted to use simple schemes for coordination ... Only
// about 8 million cycles (about 6.2 ms) are needed at 255 threads. ...
// The local admission control cost is constant and independent of the
// number of threads."
#include <vector>

#include "common.hpp"
#include "group/group_admission.hpp"

using namespace hrt;

namespace {

struct StepCost {
  sim::RunningStats join, elect, admit, barrier, total;
};

StepCost run_group(std::uint32_t n, std::uint64_t seed) {
  System::Options o;
  o.spec = hw::MachineSpec::phi();
  o.seed = seed;
  System sys(std::move(o));
  sys.boot();

  grp::ThreadGroup* group = sys.groups().create("g", n);
  std::vector<grp::GroupAdmitThenBehavior*> behaviors;
  for (std::uint32_t r = 0; r < n; ++r) {
    auto b = std::make_unique<grp::GroupAdmitThenBehavior>(
        *group,
        rt::Constraints::periodic(sim::millis(100), sim::millis(10),
                                  sim::millis(1)),
        std::make_unique<nk::SequenceBehavior>(std::vector<nk::Action>{
            nk::Action::exit()}));
    behaviors.push_back(b.get());
    sys.spawn("g" + std::to_string(r), std::move(b), 1 + r);
  }

  // Run until every member's protocol completed.
  for (int spin = 0; spin < 10000; ++spin) {
    bool all = true;
    for (auto* b : behaviors) {
      if (!b->protocol().done()) all = false;
    }
    if (all) break;
    sys.run_for(sim::millis(1));
  }

  StepCost out;
  for (auto* b : behaviors) {
    const auto& t = b->protocol().timing();
    if (t.total_done < 0) continue;
    out.join.add(static_cast<double>(t.join_done - t.start));
    out.elect.add(static_cast<double>(t.election_done - t.join_done));
    out.admit.add(static_cast<double>(t.admission_done - t.election_done));
    out.barrier.add(static_cast<double>(t.total_done - t.admission_done));
    out.total.add(static_cast<double>(t.total_done - t.join_done));
  }
  return out;
}

/// Figure 10(c)'s flat line: the plain (individual) change-constraints cost.
double local_change_cost(std::uint64_t seed) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  o.seed = seed;
  System sys(std::move(o));
  sys.boot();
  sim::Nanos t0 = -1;
  sim::Nanos t1 = -1;
  auto b = std::make_unique<nk::FnBehavior>(
      [&t0, &t1](nk::ThreadCtx& ctx, std::uint64_t step) {
        if (step == 0) {
          t0 = ctx.wall_now;
          return nk::Action::change_constraints(
              rt::Constraints::periodic(sim::millis(50), sim::millis(10),
                                        sim::millis(1)),
              [&t1](nk::ThreadCtx& c) { t1 = c.wall_now; });
        }
        return nk::Action::exit();
      });
  sys.spawn("solo", std::move(b), 1);
  sys.run_for(sim::millis(20));
  return t1 > t0 ? static_cast<double>(t1 - t0) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header("Figure 10: group admission control costs on Phi vs #threads",
                "every step linear in n; ~8e6 cycles total at 255 threads; "
                "local admission cost flat");

  const auto& spec = hw::MachineSpec::phi();
  const double local_cyc = bench::to_cycles(
      spec, static_cast<sim::Nanos>(local_change_cost(args.seed)));

  std::vector<std::uint32_t> sizes = {2, 8, 32, 64, 128, 255};
  std::printf("\n%8s %14s %14s %14s %14s %16s (avg cycles)\n",
              "threads", "join", "election", "admission", "barrier+phase",
              "group total");
  double total_at_max = 0.0;
  double total_at_8 = 0.0;
  for (std::uint32_t n : sizes) {
    if (!args.full && n > 128) {
      // quick mode still includes 255: the paper's headline point
    }
    StepCost c = run_group(n, args.seed);
    auto cyc = [&spec](const sim::RunningStats& s) {
      return bench::to_cycles(spec, static_cast<sim::Nanos>(s.mean()));
    };
    std::printf("%8u %14.3g %14.3g %14.3g %14.3g %16.3g\n", n, cyc(c.join),
                cyc(c.elect), cyc(c.admit), cyc(c.barrier), cyc(c.total));
    if (n == 255) total_at_max = cyc(c.total);
    if (n == 8) total_at_8 = cyc(c.total);
  }
  std::printf("\nlocal (individual) change constraints: %.3g cycles — flat\n",
              local_cyc);

  bench::shape_check("group cost grows with n (255 >> 8)",
                     total_at_max > 5.0 * total_at_8);
  bench::shape_check("255-thread admission costs millions of cycles "
                     "(paper: ~8e6)",
                     total_at_max > 5e5 && total_at_max < 5e7);
  bench::shape_check("local admission constant and far below the group cost",
                     local_cyc < 0.25 * total_at_max);
  return 0;
}
