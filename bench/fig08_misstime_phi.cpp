// Figure 8: average (and deviation of) miss times on the Phi.
//
// "For feasible timing constraints, the miss times are of course always
// zero.  For infeasible timing constraints, the miss times are generally
// quite small compared to the constraint."
#include "missrate_common.hpp"

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header("Figure 8: mean miss time (us) vs (tau, sigma) on Phi "
                "(admission control disabled); cells = mean lateness, us",
                "misses, when they occur, are small (a few us)");
  auto points = bench::run_sweep(hrt::hw::MachineSpec::phi(), args,
                                 /*print_rate=*/false);

  bool small_misses = true;
  bool feasible_zero = true;
  for (const auto& p : points) {
    // Lateness stays within ~1.5x the period even deep in infeasibility.
    if (p.miss_time_us * 1000.0 > 1.5 * static_cast<double>(p.period)) {
      small_misses = false;
    }
    if (p.period >= hrt::sim::micros(100) && p.slice_pct <= 70 &&
        p.miss_time_us > 0.01) {
      feasible_zero = false;
    }
  }
  bench::shape_check("feasible constraints: zero miss time", feasible_zero);
  bench::shape_check("infeasible constraints: lateness bounded ~O(period)",
                     small_misses);
  return 0;
}
