// Micro-benchmarks of the primitives underlying the scheduler's bounded
// invocation time (section 3.3): fixed-capacity queues, admission-control
// analyses, the buddy allocator, the event engine, TSC calibration, and
// cyclic-executive construction.  These are host-time benchmarks
// (google-benchmark), unlike the figure benches which measure simulated
// time.
#include <benchmark/benchmark.h>

#include "nautilus/buddy.hpp"
#include "rt/admission.hpp"
#include "rt/cyclic_executive.hpp"
#include "rt/queues.hpp"
#include "rt/system.hpp"
#include "sim/engine.hpp"
#include "timesync/calibration.hpp"

namespace {

using namespace hrt;

struct IntBefore {
  bool operator()(int a, int b) const { return a < b; }
};

void BM_BoundedHeapPushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rt::BoundedHeap<int, IntBefore> heap(n);
  std::uint64_t x = 88172645463325252ull;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      benchmark::DoNotOptimize(heap.push(static_cast<int>(x % 100000)));
    }
    while (!heap.empty()) benchmark::DoNotOptimize(heap.pop());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BoundedHeapPushPop)->Arg(16)->Arg(256)->Arg(1024);

std::vector<rt::PeriodicTask> make_set(int n) {
  std::vector<rt::PeriodicTask> set;
  for (int i = 0; i < n; ++i) {
    const sim::Nanos period = sim::micros(100) * (i + 1);
    set.push_back(rt::PeriodicTask{period, period / (2 * n), 0});
  }
  return set;
}

void BM_AdmissionEdf(benchmark::State& state) {
  auto set = make_set(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::edf_admissible(set, 0.79));
  }
}
BENCHMARK(BM_AdmissionEdf)->Arg(4)->Arg(32);

void BM_AdmissionRmRta(benchmark::State& state) {
  auto set = make_set(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::rm_rta_admissible(set, 0.79));
  }
}
BENCHMARK(BM_AdmissionRmRta)->Arg(4)->Arg(32);

void BM_AdmissionSimulated(benchmark::State& state) {
  // Harmonic periods keep the hyperperiod small, as a real deployment would.
  std::vector<rt::PeriodicTask> set = {
      {sim::micros(100), sim::micros(20), 0},
      {sim::micros(200), sim::micros(50), 0},
      {sim::micros(400), sim::micros(100), 0},
  };
  rt::SimAdmissionConfig cfg;
  cfg.per_invocation_overhead = sim::micros(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::simulate_edf_admission(set, cfg));
  }
}
BENCHMARK(BM_AdmissionSimulated);

void BM_BuddyAllocFree(benchmark::State& state) {
  for (auto _ : state) {
    nk::BuddyAllocator buddy(0x1000000, 12, 24);
    std::vector<std::uint64_t> blocks;
    for (int i = 0; i < 64; ++i) {
      auto a = buddy.alloc(4096u << (i % 4));
      if (a) blocks.push_back(*a);
    }
    for (auto a : blocks) buddy.free(a);
    benchmark::DoNotOptimize(buddy.free_bytes());
  }
}
BENCHMARK(BM_BuddyAllocFree);

void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < 1000; ++i) {
      eng.schedule_at(i * 10, [] {});
    }
    eng.run_all();
    benchmark::DoNotOptimize(eng.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleRun);

void BM_TscCalibration256(benchmark::State& state) {
  for (auto _ : state) {
    hw::Machine machine(hw::MachineSpec::phi(), 42);
    auto res = timesync::calibrate(machine);
    benchmark::DoNotOptimize(res.max_abs_residual());
  }
}
BENCHMARK(BM_TscCalibration256);

void BM_CyclicExecutiveBuild(benchmark::State& state) {
  std::vector<rt::PeriodicTask> set = {
      {sim::micros(100), sim::micros(25), 0},
      {sim::micros(200), sim::micros(40), 0},
      {sim::micros(400), sim::micros(60), 0},
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::CyclicExecutiveBuilder::build(set));
  }
}
BENCHMARK(BM_CyclicExecutiveBuild);

void BM_FullSystemBoot256(benchmark::State& state) {
  for (auto _ : state) {
    System sys;  // 256-CPU Phi
    sys.boot();
    benchmark::DoNotOptimize(sys.kernel().booted());
  }
}
BENCHMARK(BM_FullSystemBoot256);

void BM_SimulatedSchedulerSecond(benchmark::State& state) {
  // How much host time does one simulated millisecond of a busy periodic
  // schedule cost?
  for (auto _ : state) {
    System::Options o;
    o.spec = hw::MachineSpec::phi_small(4);
    System sys(std::move(o));
    sys.boot();
    auto b = std::make_unique<nk::FnBehavior>(
        [](nk::ThreadCtx&, std::uint64_t step) {
          if (step == 0) {
            return nk::Action::change_constraints(rt::Constraints::periodic(
                sim::millis(1), sim::micros(100), sim::micros(50)));
          }
          return nk::Action::compute(sim::micros(25));
        });
    sys.spawn("p", std::move(b), 1);
    sys.run_for(sim::millis(20));
    benchmark::DoNotOptimize(sys.engine().events_executed());
  }
}
BENCHMARK(BM_SimulatedSchedulerSecond);

}  // namespace

BENCHMARK_MAIN();
