// Cluster failover ablation (src/cluster/, docs/CLUSTER.md).
//
// One scenario, two cells differing only in Options::failover: a small
// cluster carries a mixed tenant population (critical RT gangs + a
// best-effort scrubber), then the node hosting the largest RT job crashes
// mid-run.  The failover cell must detect the crash within one control
// period, re-place every affected admitted group onto survivors via the
// node tier's batched spawn paths, and deliver zero deadline misses on the
// re-placed groups from re-admission onward.  The baseline cell keeps the
// lost jobs lost, so its RT availability (delivered / expected job-time)
// decays for the rest of the run — the gap is the value of the cluster
// tier, and bench/run_perf.sh gates on it.
//
// Output: a human-readable table plus a JSON record (--json=PATH, default
// BENCH_cluster.json); see docs/PERFORMANCE.md for the schema.
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/controller.hpp"
#include "common.hpp"

namespace {

using namespace hrt;

cluster::JobSpec gang(const std::string& tenant, const std::string& name,
                      std::uint32_t threads, sim::Nanos slice) {
  cluster::JobSpec s;
  s.tenant = tenant;
  s.name = name;
  s.kind = cluster::JobKind::kGang;
  s.threads = threads;
  s.constraints =
      rt::Constraints::periodic(sim::millis(1), sim::millis(1), slice);
  s.work_chunk = sim::micros(200);
  return s;
}

struct JobRow {
  std::string name;
  std::string state;
  std::uint32_t node = cluster::kInvalidNode;
  std::uint64_t misses = 0;
  std::uint32_t placements = 0;
};

struct Cell {
  bool failover = false;
  // results
  double availability = 0.0;
  std::uint64_t post_failover_misses = 0;  // RT jobs, current placements
  std::uint64_t lost_jobs = 0;
  std::uint64_t replaced_off_victim = 0;
  std::uint64_t affected_jobs = 0;  // RT jobs on the victim at crash time
  std::uint64_t failovers = 0;
  std::uint64_t replacements = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t backfills = 0;
  double detect_mean_us = 0.0, detect_max_us = 0.0;
  double replace_mean_us = 0.0, replace_max_us = 0.0;
  std::uint64_t audit_violations = 0;
  double control_period_us = 0.0;
  std::vector<JobRow> jobs;
};

Cell run_cell(bool failover, std::uint64_t seed, std::uint32_t nodes,
              sim::Nanos horizon) {
  Cell c;
  c.failover = failover;

  cluster::ClusterController::Options o;
  o.nodes = nodes;
  o.node_options.spec = hw::MachineSpec::phi_small(2);
  o.node_options.seed = seed;
  o.node_options.smi_enabled = false;
  o.node_options.spec.smi.enabled = false;
  o.node_options.audit.enabled = true;
  o.audit.enabled = true;
  o.telemetry.enabled = true;
  o.failover = failover;
  c.control_period_us = static_cast<double>(o.control_period) / 1000.0;
  cluster::ClusterController ctl(std::move(o));

  ctl.add_tenant({"ctrl", 2.0, 10});
  ctl.add_tenant({"analytics", 1.0, 200});
  const cluster::JobId web =
      ctl.submit(gang("ctrl", "web", 2, sim::micros(300)));  // demand 0.6
  ctl.submit(gang("ctrl", "db", 1, sim::micros(200)));       // demand 0.2
  {
    cluster::JobSpec be;
    be.tenant = "analytics";
    be.name = "scrub";
    be.kind = cluster::JobKind::kBestEffort;
    be.threads = 2;
    be.work_chunk = sim::micros(200);
    ctl.submit(std::move(be));
  }
  ctl.run_for(sim::millis(10));  // warmup: everything places and admits

  // Crash the node hosting the largest RT job one millisecond from now.
  const std::uint32_t victim = ctl.job(web).node;
  for (const auto& j : ctl.jobs()) {
    if (j.kind != cluster::JobKind::kBestEffort && j.node == victim) {
      ++c.affected_jobs;
    }
  }
  // Mid-control-period crash: detection latency is then a real fraction of
  // the heartbeat, not the degenerate on-boundary zero.
  ctl.fail_node(victim,
                ctl.now() + sim::millis(1) + ctl.options().control_period / 2);
  ctl.run_for(horizon);

  c.availability = ctl.availability();
  for (const auto& j : ctl.jobs()) {
    c.jobs.push_back({j.name, cluster::job_state_name(j.state), j.node,
                      j.misses, j.placements});
    if (j.kind == cluster::JobKind::kBestEffort) continue;
    c.post_failover_misses += j.misses;
    if (j.state == cluster::JobState::kLost) ++c.lost_jobs;
    if (j.state == cluster::JobState::kRunning && j.node != victim &&
        j.placements > 1) {
      ++c.replaced_off_victim;
    }
  }
  const auto& st = ctl.stats();
  c.failovers = st.failovers;
  c.replacements = st.replacements;
  c.preemptions = st.preemptions;
  c.backfills = st.backfills;
  c.detect_mean_us = st.detect_ns.mean() / 1000.0;
  c.detect_max_us = st.detect_ns.max() / 1000.0;
  c.replace_mean_us = st.replace_ns.mean() / 1000.0;
  c.replace_max_us = st.replace_ns.max() / 1000.0;
  c.audit_violations = ctl.auditor().total_violations();
  return c;
}

std::string cell_json(const Cell& c) {
  bench::JsonObject j;
  j.field("failover", std::string(c.failover ? "on" : "off"));
  j.field("availability", c.availability);
  j.field("post_failover_misses", c.post_failover_misses);
  j.field("lost_jobs", c.lost_jobs);
  j.field("affected_jobs", c.affected_jobs);
  j.field("replaced_off_victim", c.replaced_off_victim);
  j.field("failovers", c.failovers);
  j.field("replacements", c.replacements);
  j.field("preemptions", c.preemptions);
  j.field("backfills", c.backfills);
  j.field("detect_mean_us", c.detect_mean_us);
  j.field("detect_max_us", c.detect_max_us);
  j.field("replace_mean_us", c.replace_mean_us);
  j.field("replace_max_us", c.replace_max_us);
  j.field("audit_violations", c.audit_violations);
  std::string arr = "[";
  for (std::size_t i = 0; i < c.jobs.size(); ++i) {
    bench::JsonObject row;
    row.field("name", c.jobs[i].name);
    row.field("state", c.jobs[i].state);
    row.field("node", static_cast<std::uint64_t>(c.jobs[i].node));
    row.field("misses", c.jobs[i].misses);
    row.field("placements", static_cast<std::uint64_t>(c.jobs[i].placements));
    if (i > 0) arr += ", ";
    arr += row.str();
  }
  arr += "]";
  j.raw("jobs", arr);
  return j.str();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::parse_args(argc, argv);
  if (args.json.empty()) args.json = "BENCH_cluster.json";

  bench::header(
      "ablate_cluster: node-crash failover vs no-failover baseline",
      "the cluster tier detects a crashed node within one control period, "
      "re-places every affected admitted group onto survivors with zero "
      "post-failover deadline misses, and keeps RT availability strictly "
      "above the baseline that lets the lost jobs stay lost");

  const std::uint32_t nodes = args.full ? 4 : 3;
  const sim::Nanos horizon = args.full ? sim::millis(200) : sim::millis(50);
  bench::Stopwatch wall;
  Cell cells[2];
  bench::parallel_for_index(2, args.threads, [&](std::size_t i) {
    cells[i] = run_cell(i == 0, args.seed, nodes, horizon);
  });
  const Cell& on = cells[0];
  const Cell& off = cells[1];

  std::printf("%-10s %14s %12s %10s %12s %12s\n", "cell", "availability",
              "post_misses", "lost", "detect_us", "replace_us");
  for (const Cell* c : {&on, &off}) {
    std::printf("%-10s %14.4f %12llu %10llu %12.1f %12.1f\n",
                c->failover ? "failover" : "baseline", c->availability,
                (unsigned long long)c->post_failover_misses,
                (unsigned long long)c->lost_jobs, c->detect_max_us,
                c->replace_max_us);
  }
  std::printf("\nfailover cell: %llu affected RT jobs on the victim, %llu "
              "re-placed on survivors, %llu preemptions, %llu backfills\n\n",
              (unsigned long long)on.affected_jobs,
              (unsigned long long)on.replaced_off_victim,
              (unsigned long long)on.preemptions,
              (unsigned long long)on.backfills);

  bench::shape_check("crash detected within one control period",
                     on.failovers >= 1 &&
                         on.detect_max_us <= on.control_period_us);
  bench::shape_check("every affected admitted group re-placed on survivors",
                     on.affected_jobs >= 1 &&
                         on.replaced_off_victim == on.affected_jobs &&
                         on.lost_jobs == 0);
  bench::shape_check("zero post-failover deadline misses",
                     on.post_failover_misses == 0);
  bench::shape_check("baseline loses the victim's jobs for good",
                     off.lost_jobs >= 1);
  bench::shape_check("failover availability strictly above baseline",
                     on.availability > off.availability);
  bench::shape_check("zero invariant-audit violations in both cells",
                     on.audit_violations == 0 && off.audit_violations == 0);
  std::printf("total wall %.2fs\n", wall.seconds());

  // ---- JSON record (schema: docs/PERFORMANCE.md) ----
  bench::JsonObject j;
  j.field("benchmark", std::string("ablate_cluster"));
  j.field("mode", std::string(args.full ? "full" : "quick"));
  j.field("seed", static_cast<std::uint64_t>(args.seed));
  j.field("nodes", static_cast<std::uint64_t>(nodes));
  j.field("horizon_ms", static_cast<std::uint64_t>(horizon / 1000000));
  j.field("control_period_us", on.control_period_us);
  // Flat gate keys (bench/run_perf.sh reads these three directly).
  j.field("availability_failover", on.availability);
  j.field("availability_baseline", off.availability);
  j.field("post_failover_misses", on.post_failover_misses);
  j.raw("failover_cell", cell_json(on));
  j.raw("baseline_cell", cell_json(off));
  if (!j.write_file(args.json)) {
    std::fprintf(stderr, "warning: cannot write %s\n", args.json.c_str());
    return 1;
  }
  std::printf("wrote %s\n", args.json.c_str());
  return 0;
}
