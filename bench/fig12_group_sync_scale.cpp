// Figure 12: cross-CPU scheduler synchronization vs group size (8 to 255
// threads) with periodic constraints, phase correction disabled.
//
// "The average difference, which depends on the number of threads in the
// group, can be handled with phase correction.  The more important, and
// uncorrectable, variation is on the other hand largely independent of the
// number of threads in the group.  Even in a fully occupied Phi ... we can
// keep threads ... synchronized to within about 4000 cycles (3 us) purely
// through the use of hard real-time scheduling."
#include "group_sync_common.hpp"

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header(
      "Figure 12: cross-CPU sync vs group size (phase correction disabled), "
      "plus the corrected result",
      "bias grows with group size; variation (and the corrected sync) "
      "stays ~4000 cycles regardless of size");

  const hrt::sim::Nanos horizon =
      args.full ? hrt::sim::millis(300) : hrt::sim::millis(50);
  std::vector<std::uint32_t> sizes = {8, 64, 128, 255};

  std::printf("\n%8s %14s %14s %14s %18s\n", "threads", "avg diff",
              "max diff", "variation", "corrected avg diff");
  double bias8 = 0.0;
  double bias255 = 0.0;
  double worst_corrected = 0.0;
  bool all_ok = true;
  for (std::uint32_t n : sizes) {
    auto u = bench::measure_group_sync(n, false, args.seed, horizon);
    auto c = bench::measure_group_sync(n, true, args.seed, horizon);
    all_ok = all_ok && u.ok && c.ok;
    std::printf("%8u %11.0f cy %11.0f cy %11.0f cy %15.0f cy\n", n,
                u.avg_diff_cycles, u.max_diff_cycles, u.variation_cycles,
                c.avg_diff_cycles);
    if (n == 8) bias8 = u.avg_diff_cycles;
    if (n == 255) bias255 = u.avg_diff_cycles;
    worst_corrected = std::max(worst_corrected, c.avg_diff_cycles);
  }

  bench::shape_check("all groups admitted and ran", all_ok);
  bench::shape_check("uncorrected bias grows strongly with group size "
                     "(255 threads >> 8 threads)",
                     bias255 > 8.0 * bias8);
  bench::shape_check("255-thread uncorrected diff ~1e4..1e5 cycles "
                     "(paper: up to ~7e4)",
                     bias255 > 1e4 && bias255 < 2e5);
  bench::shape_check("corrected sync ~4000 cycles independent of size",
                     worst_corrected < 4500.0);
  return 0;
}
