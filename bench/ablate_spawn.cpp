// Spawn-path ablation (PR 7): lock-free admission fast path + batched spawn.
//
// Three cells spawn the same N-spec periodic workload:
//   serial_slow — pre-PR flow: per-spec placement + thread creation +
//                 admission with the fast path DISABLED (every decision runs
//                 the O(n) slow analysis).
//   serial_fast — same per-spec flow with the Q32.32 word probe enabled.
//   batch       — System::spawn_batch: one placement pass, pool-backed
//                 parked creation, one admission analysis per target CPU,
//                 one kick per CPU.
//
// Plus a decision-latency cell: host-clock samples of the O(1) fast-path
// word probe vs the O(n) slow analysis on a scheduler holding a deep task
// set.  bench/run_perf.sh gates batch >= 5x serial_slow throughput at 1024
// specs and fast-path decision p99 <= 1 us (docs/PERFORMANCE.md).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace hrt;

constexpr unsigned kCpus = 2;  // deep per-CPU sets stress the slow analysis

System::Options cell_options(bool fast) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(kCpus);
  o.smi_enabled = false;
  o.spec.smi.enabled = false;
  o.interrupt_laden_cpus = 0;
  o.sched.fast_admission = fast;
  return o;
}

/// Spec i of the workload: ~5e-4 utilization each, periods staggered so the
/// sets are not degenerate.  The whole workload fits the machine, so the
/// batch cell's all-or-nothing admission succeeds.
rt::Constraints workload_spec(int i) {
  return rt::Constraints::periodic(
      0, sim::millis(100) + (i % 7) * sim::micros(10), sim::micros(50));
}

std::unique_ptr<nk::Behavior> worker() {
  return std::make_unique<nk::BusyLoopBehavior>(sim::millis(2));
}

struct CellResult {
  double spawns_per_sec = 0;
  std::uint64_t admitted = 0;
};

/// Pre-PR serial flow: place, create, admit — one full round-trip per spec.
CellResult run_serial(int n, bool fast) {
  CellResult best;
  for (int rep = 0; rep < 3; ++rep) {
    System sys(cell_options(fast));
    sys.boot();
    std::uint64_t ok = 0;
    const auto t0 = Clock::now();
    for (int i = 0; i < n; ++i) {
      const rt::Constraints c = workload_spec(i);
      const std::uint32_t cpu = sys.placement().place(c);
      nk::Thread* t = sys.spawn("w" + std::to_string(i), worker(), cpu);
      if (sys.sched(cpu).reserve_constraints(*t, c)) ++ok;
    }
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    best.spawns_per_sec = std::max(best.spawns_per_sec, n / secs);
    best.admitted = ok;
  }
  return best;
}

CellResult run_batch(int n) {
  CellResult best;
  for (int rep = 0; rep < 3; ++rep) {
    System sys(cell_options(true));
    sys.boot();
    std::vector<System::SpawnSpec> specs;
    specs.reserve(n);
    for (int i = 0; i < n; ++i) {
      System::SpawnSpec sp;
      sp.name = "w" + std::to_string(i);
      sp.behavior = worker();
      sp.constraints = workload_spec(i);
      specs.push_back(std::move(sp));
    }
    const auto t0 = Clock::now();
    System::BatchSpawnResult r = sys.spawn_batch(std::move(specs));
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    best.spawns_per_sec = std::max(best.spawns_per_sec, n / secs);
    best.admitted = r.ok ? r.threads.size() : 0;
  }
  return best;
}

struct Percentiles {
  double p50 = 0;
  double p99 = 0;
};

Percentiles percentiles(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  Percentiles p;
  p.p50 = samples[samples.size() / 2];
  p.p99 = samples[samples.size() * 99 / 100];
  return p;
}

/// Host-clock latency of one admission decision against a scheduler already
/// holding `depth` periodic reservations.  `fast` samples the O(1) word
/// probe; the slow samples run the full analysis (probe_admission).
void decision_latency(int depth, int samples, Percentiles* fast,
                      Percentiles* slow) {
  // Two identically-loaded systems: probe_admission honors fast_admission,
  // so the slow samples must come from a system with the word probe off.
  System fast_sys(cell_options(true));
  System slow_sys(cell_options(false));
  fast_sys.boot();
  slow_sys.boot();
  for (int i = 0; i < depth; ++i) {
    nk::Thread* tf = fast_sys.spawn("h" + std::to_string(i), worker(), 0);
    nk::Thread* ts = slow_sys.spawn("h" + std::to_string(i), worker(), 0);
    (void)fast_sys.sched(0).reserve_constraints(*tf, workload_spec(i));
    (void)slow_sys.sched(0).reserve_constraints(*ts, workload_spec(i));
  }
  const rt::Constraints probe = workload_spec(0);
  std::vector<double> fast_ns, slow_ns;
  fast_ns.reserve(samples);
  slow_ns.reserve(samples);
  for (int i = 0; i < samples; ++i) {
    auto t0 = Clock::now();
    const auto d = fast_sys.sched(0).fast_path_decision(probe);
    fast_ns.push_back(
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count());
    if (!d.has_value()) std::abort();  // kEdf + periodic: probe must apply
    t0 = Clock::now();
    (void)slow_sys.sched(0).probe_admission(probe);
    slow_ns.push_back(
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count());
  }
  *fast = percentiles(fast_ns);
  *slow = percentiles(slow_ns);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const int n = args.full ? 4096 : 1024;

  bench::header("ablate_spawn: batched spawn + lock-free admission fast path",
                "amortized group admission; O(1) wait-free admit/reject probe");

  const CellResult slow = run_serial(n, /*fast=*/false);
  const CellResult fast = run_serial(n, /*fast=*/true);
  const CellResult batch = run_batch(n);
  const double speedup_batch = batch.spawns_per_sec / slow.spawns_per_sec;
  const double speedup_fast = fast.spawns_per_sec / slow.spawns_per_sec;

  std::printf("%-12s %12s %10s\n", "cell", "spawns/sec", "admitted");
  std::printf("%-12s %12.0f %10llu\n", "serial_slow", slow.spawns_per_sec,
              static_cast<unsigned long long>(slow.admitted));
  std::printf("%-12s %12.0f %10llu\n", "serial_fast", fast.spawns_per_sec,
              static_cast<unsigned long long>(fast.admitted));
  std::printf("%-12s %12.0f %10llu\n", "batch", batch.spawns_per_sec,
              static_cast<unsigned long long>(batch.admitted));
  std::printf("batch speedup vs serial_slow: %.2fx (fast path alone %.2fx)\n",
              speedup_batch, speedup_fast);

  Percentiles fp{}, sp{};
  decision_latency(/*depth=*/n / static_cast<int>(kCpus),
                   /*samples=*/args.full ? 100000 : 20000, &fp, &sp);
  std::printf("fast-path decision: p50 %.0f ns, p99 %.0f ns\n", fp.p50, fp.p99);
  std::printf("slow-path decision: p50 %.0f ns, p99 %.0f ns\n", sp.p50, sp.p99);

  // Decision equivalence: the fast path may only change cost, never the
  // verdict — both serial cells must admit the identical count.
  bench::shape_check("fast path never changes the admission verdict",
                     slow.admitted == fast.admitted);
  bench::shape_check("all-or-nothing batch admitted the whole workload",
                     batch.admitted == static_cast<std::uint64_t>(n));
  bench::shape_check("batch >= 5x serial_slow spawn throughput",
                     speedup_batch >= 5.0);
  bench::shape_check("fast-path decision p99 <= 1 us", fp.p99 <= 1000.0);

  if (!args.json.empty()) {
    bench::JsonObject j;
    j.field("benchmark", std::string("ablate_spawn"));
    j.field("mode", std::string(args.full ? "full" : "quick"));
    j.field("specs", static_cast<std::uint64_t>(n));
    j.field("cpus", static_cast<std::uint64_t>(kCpus));
    j.field("serial_slow_spawns_per_sec", slow.spawns_per_sec);
    j.field("serial_fast_spawns_per_sec", fast.spawns_per_sec);
    j.field("batch_spawns_per_sec", batch.spawns_per_sec);
    j.field("batch_speedup_vs_serial_slow", speedup_batch);
    j.field("fast_speedup_vs_serial_slow", speedup_fast);
    j.field("serial_slow_admits", slow.admitted);
    j.field("serial_fast_admits", fast.admitted);
    j.field("batch_admits", batch.admitted);
    j.field("fast_decision_p50_ns", fp.p50);
    j.field("fast_decision_p99_ns", fp.p99);
    j.field("slow_decision_p50_ns", sp.p50);
    j.field("slow_decision_p99_ns", sp.p99);
    if (!j.write_file(args.json)) {
      std::fprintf(stderr, "error: cannot write %s\n", args.json.c_str());
      return 1;
    }
  }
  return 0;
}
