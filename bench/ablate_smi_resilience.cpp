// SMI missing-time resilience ablation (src/resilience/).
//
// Phase A sweeps the online missing-time estimator against SmiSource ground
// truth across SMI duration cadences, including a Markov burst-mode cell.
// The scheduler never reads the source's counters -- the estimate is built
// purely from timer-delivery lateness and handler-span residuals -- so the
// harness comparing the two here is exactly the accuracy claim of section
// 3.6 resilience: the estimate lands within 20-25% of the stolen time the
// firmware actually took.
//
// Phase B is the A/B that motivates the subsystem: one over-committed CPU
// (0.75 across three criticalities) plus anchors that deny drain headroom,
// hit by a deterministic ~36% storm.  The static baseline keeps all
// commitments and misses throughout the storm; the resilient config detects
// the storm, sheds the least-critical work, keeps every surviving periodic
// at zero misses from the moment shedding engages, and restores the shed
// thread bit-identically once the storm passes.  Every transition is
// audit-recorded and the run is invariant-audited.
//
// Output: human-readable tables plus a JSON record (--json=PATH, default
// BENCH_smi_resilience.json); see docs/PERFORMANCE.md for the schema.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "common.hpp"
#include "resilience/storm.hpp"
#include "rt/system.hpp"

namespace {

using namespace hrt;

// ---- Phase A: estimator accuracy vs ground truth ----

struct AccuracyCell {
  std::string label;
  sim::Nanos min_dur = 0, mean_dur = 0, max_dur = 0;
  bool burst = false;
  // results
  double truth_ns = 0;
  double est_ns = 0;
  double ratio = 0;
  double ewma = 0;
  std::uint64_t episodes = 0;
  std::uint64_t smis = 0;
};

void run_accuracy(AccuracyCell& c, std::uint64_t seed, sim::Nanos horizon) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(2);
  o.seed = seed;
  o.spec.smi.mean_interval_ns = sim::micros(400);
  o.spec.smi.min_duration_ns = c.min_dur;
  o.spec.smi.mean_duration_ns = c.mean_dur;
  o.spec.smi.max_duration_ns = c.max_dur;
  if (c.burst) {
    o.spec.smi.mean_interval_ns = sim::millis(2);
    o.spec.smi.burst_enabled = true;
    o.spec.smi.storm_mean_interval_ns = sim::micros(120);
    o.spec.smi.mean_quiet_ns = sim::millis(4);
    o.spec.smi.mean_storm_ns = sim::millis(2);
  }
  o.resilience.enabled = true;
  System sys(std::move(o));
  sys.boot();
  // A busy periodic keeps CPU 1's timer path hot (arrivals every 100 us).
  rt::Constraints rc =
      rt::Constraints::periodic(sim::millis(1), sim::micros(100),
                                sim::micros(30));
  sys.spawn("busy",
            std::make_unique<nk::FnBehavior>(
                [rc](nk::ThreadCtx&, std::uint64_t step) {
                  if (step == 0) return nk::Action::change_constraints(rc);
                  return nk::Action::compute(rc.period / 7);
                }),
            1, 10);
  sys.run_for(horizon);

  c.truth_ns = static_cast<double>(sys.machine().smi().stats().total_stolen_ns);
  c.est_ns = static_cast<double>(sys.sched(1).missing_time().stolen_total_ns());
  c.ratio = c.truth_ns > 0 ? c.est_ns / c.truth_ns : 0.0;
  c.ewma = sys.sched(1).missing_time().ewma_fraction();
  c.episodes = sys.sched(1).missing_time().episodes();
  c.smis = sys.machine().smi().stats().count;
}

// ---- Phase B: resilient vs static baseline under an injected storm ----

nk::Thread* spawn_rt(System& sys, std::string name, std::uint32_t cpu,
                     sim::Nanos period, sim::Nanos slice,
                     rt::AperiodicPriority crit) {
  rt::Constraints c = rt::Constraints::periodic(sim::millis(1), period, slice);
  c.priority = crit;  // shed criticality: lower value = more important
  auto b = std::make_unique<nk::FnBehavior>(
      [c](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) return nk::Action::change_constraints(c);
        return nk::Action::compute(c.period / 7);
      });
  return sys.spawn(std::move(name), std::move(b), cpu, 10);
}

struct AbThread {
  std::string name;
  std::uint64_t arrivals = 0;
  std::uint64_t misses = 0;
  std::uint64_t misses_at_engage = 0;  // snapshot when shedding engaged
  bool was_shed = false;
};

struct AbResult {
  std::string label;
  bool resilient = false;
  std::vector<AbThread> threads;
  std::uint64_t total_misses = 0;
  std::uint64_t sheds = 0, restores = 0, drains = 0;
  std::uint64_t storms_entered = 0, storms_exited = 0;
  std::uint64_t transitions_logged = 0;
  std::uint64_t shed_count_end = 0;
  std::uint64_t audit_violations = 0;       // all invariants
  std::uint64_t resilience_violations = 0;  // kShedState + kEffectiveCapacity
  bool engaged = false;
  sim::Nanos engage_time = -1;
  // misses accrued by never-shed periodics after shedding engaged
  std::uint64_t post_engage_nonshed_misses = 0;
};

AbResult run_ab(bool resilient, std::uint64_t seed) {
  AbResult r;
  r.label = resilient ? "resilient" : "baseline";
  r.resilient = resilient;

  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  o.seed = seed;
  o.smi_enabled = false;  // storm injected deterministically below
  o.resilience.enabled = resilient;
  o.audit.enabled = true;
  // The spec says no SMIs, so the auto-derived budget tolerance carries no
  // missing-time allowance — but the hand-forced freezes below do charge
  // slices (section 3.6): up to three 35 us freezes fit the 200 us slice.
  o.audit.budget_slop = sim::micros(120);
  System sys(std::move(o));
  sys.boot();

  // Anchors keep every other CPU too full to absorb a drain under a
  // machine-wide storm; the contested CPU carries 0.75 across three
  // criticality levels.
  std::vector<nk::Thread*> threads;
  threads.push_back(spawn_rt(sys, "anchor0", 0, sim::millis(1),
                             sim::micros(300), 0));
  threads.push_back(spawn_rt(sys, "anchor2", 2, sim::millis(1),
                             sim::micros(300), 0));
  threads.push_back(spawn_rt(sys, "anchor3", 3, sim::millis(1),
                             sim::micros(300), 0));
  threads.push_back(spawn_rt(sys, "crit", 1, sim::micros(100),
                             sim::micros(30), 1));
  threads.push_back(spawn_rt(sys, "mid", 1, sim::micros(500),
                             sim::micros(125), 4));
  threads.push_back(spawn_rt(sys, "low", 1, sim::millis(1),
                             sim::micros(200), 6));
  sys.run_for(sim::millis(5));

  // ~36% of the machine stolen over [5, 60) ms.  97 us is coprime with the
  // watchdog cadence so the deterministic grid cannot phase-lock against
  // the timer (real SMI arrivals are exponential and never lock).
  for (sim::Nanos t = sim::millis(5); t < sim::millis(60);
       t += sim::micros(97)) {
    sys.engine().schedule_at(t, [&sys] {
      sys.machine().smi().force(sim::micros(35));
    });
  }
  // Poll for the moment shedding engages and snapshot per-thread misses:
  // the zero-miss claim is about surviving periodics *after* the controller
  // reacts, not about the detection transient.
  std::vector<std::uint64_t> engage_misses(threads.size(), 0);
  bool engaged = false;
  sim::Nanos engage_time = -1;
  if (resilient) {
    for (sim::Nanos t = sim::millis(6); t < sim::millis(60);
         t += sim::millis(1)) {
      sys.engine().schedule_at(t, [&, t] {
        if (engaged || sys.resilience().stats().sheds == 0) return;
        engaged = true;
        engage_time = t;
        for (std::size_t i = 0; i < threads.size(); ++i) {
          engage_misses[i] = threads[i]->rt.misses;
        }
      });
    }
  }
  sys.run_for(sim::millis(145));  // storm + hysteresis exit + restoration

  r.audit_violations = sys.auditor().total_violations();
  r.resilience_violations =
      sys.auditor().count(audit::Invariant::kShedState) +
      sys.auditor().count(audit::Invariant::kEffectiveCapacity);
  r.engaged = engaged;
  r.engage_time = engage_time;
  if (resilient) {
    const auto& st = sys.resilience().stats();
    r.sheds = st.sheds;
    r.restores = st.restores;
    r.drains = st.drains;
    r.storms_entered = st.storms_entered;
    r.storms_exited = st.storms_exited;
    r.transitions_logged = sys.resilience().transitions().size();
    r.shed_count_end = sys.resilience().shed_count();
  }
  for (std::size_t i = 0; i < threads.size(); ++i) {
    AbThread at;
    at.name = threads[i]->name;
    at.arrivals = threads[i]->rt.arrivals;
    at.misses = threads[i]->rt.misses;
    at.misses_at_engage = engage_misses[i];
    if (resilient) {
      for (const resilience::Transition& tr : sys.resilience().transitions()) {
        if (tr.kind == resilience::Transition::Kind::kShed &&
            tr.thread_id == threads[i]->id) {
          at.was_shed = true;
        }
      }
    }
    r.total_misses += at.misses;
    if (engaged && !at.was_shed) {
      r.post_engage_nonshed_misses += at.misses - at.misses_at_engage;
    }
    r.threads.push_back(std::move(at));
  }
  return r;
}

std::string ab_json(const AbResult& r) {
  bench::JsonObject j;
  j.field("label", r.label);
  j.field("total_misses", r.total_misses);
  j.field("sheds", r.sheds);
  j.field("restores", r.restores);
  j.field("drains", r.drains);
  j.field("storms_entered", r.storms_entered);
  j.field("storms_exited", r.storms_exited);
  j.field("transitions_logged", r.transitions_logged);
  j.field("shed_count_end", r.shed_count_end);
  j.field("audit_violations", r.audit_violations);
  j.field("resilience_violations", r.resilience_violations);
  j.field("post_engage_nonshed_misses", r.post_engage_nonshed_misses);
  std::string arr = "[";
  for (std::size_t i = 0; i < r.threads.size(); ++i) {
    const AbThread& t = r.threads[i];
    bench::JsonObject tj;
    tj.field("name", t.name);
    tj.field("arrivals", t.arrivals);
    tj.field("misses", t.misses);
    tj.field("was_shed", std::string(t.was_shed ? "yes" : "no"));
    if (i > 0) arr += ", ";
    arr += tj.str();
  }
  arr += "]";
  j.raw("threads", arr);
  return j.str();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::parse_args(argc, argv);
  if (args.json.empty()) args.json = "BENCH_smi_resilience.json";

  bench::header(
      "ablate_smi_resilience: online missing-time estimation + storm shedding",
      "estimator within 20-25% of SmiSource ground truth; under a ~36% storm "
      "the resilient config sheds low-criticality work and keeps surviving "
      "periodics at zero misses while the static baseline misses");

  // ---- Phase A ----
  const sim::Nanos horizon = args.full ? sim::seconds(3) : sim::seconds(1);
  std::vector<AccuracyCell> cells = {
      {"short/15us", sim::micros(10), sim::micros(15), sim::micros(30)},
      {"mid/35us", sim::micros(20), sim::micros(35), sim::micros(80)},
      {"long/50us", sim::micros(30), sim::micros(50), sim::micros(100)},
      {"burst/15us", sim::micros(10), sim::micros(15), sim::micros(30), true},
  };
  if (args.full) {
    cells.push_back(
        {"tiny/8us", sim::micros(5), sim::micros(8), sim::micros(15)});
  }
  bench::Stopwatch wall;
  bench::parallel_for_index(cells.size(), args.threads, [&](std::size_t i) {
    run_accuracy(cells[i], args.seed + i, horizon);
  });

  std::printf("%-12s %12s %12s %7s %7s %9s %7s\n", "cell", "truth_us",
              "est_us", "ratio", "ewma", "episodes", "smis");
  bool all_in_band = true;
  for (const AccuracyCell& c : cells) {
    all_in_band &= c.ratio >= 0.80 && c.ratio <= 1.25;
    std::printf("%-12s %12.1f %12.1f %7.3f %7.4f %9llu %7llu\n",
                c.label.c_str(), c.truth_ns / 1000.0, c.est_ns / 1000.0,
                c.ratio, c.ewma, (unsigned long long)c.episodes,
                (unsigned long long)c.smis);
  }
  std::printf("\n");
  bench::shape_check("estimator within [0.80, 1.25] of ground truth in "
                     "every cell (software-only signals)",
                     all_in_band);

  // ---- Phase B ----
  AbResult ab[2];
  bench::parallel_for_index(2, args.threads, [&](std::size_t i) {
    ab[i] = run_ab(i == 1, args.seed);
  });
  const AbResult& base = ab[0];
  const AbResult& res = ab[1];

  std::printf("\n%-10s %8s | baseline misses | resilient misses  shed\n",
              "thread", "arrivals");
  for (std::size_t i = 0; i < base.threads.size(); ++i) {
    std::printf("%-10s %8llu | %15llu | %16llu  %s\n",
                base.threads[i].name.c_str(),
                (unsigned long long)res.threads[i].arrivals,
                (unsigned long long)base.threads[i].misses,
                (unsigned long long)res.threads[i].misses,
                res.threads[i].was_shed ? "yes" : "no");
  }
  std::printf("\nbaseline total misses %llu; resilient: %llu sheds, %llu "
              "restores, %llu drains, %llu transitions logged, engage at "
              "%.1f ms, post-engage non-shed misses %llu\n\n",
              (unsigned long long)base.total_misses,
              (unsigned long long)res.sheds,
              (unsigned long long)res.restores,
              (unsigned long long)res.drains,
              (unsigned long long)res.transitions_logged,
              res.engage_time / 1e6,
              (unsigned long long)res.post_engage_nonshed_misses);

  bench::shape_check("static baseline misses under the storm",
                     base.total_misses > 0);
  bench::shape_check("storm detected and shedding engaged",
                     res.engaged && res.storms_entered > 0 && res.sheds > 0);
  bench::shape_check("non-shed periodics at zero misses once shedding engaged",
                     res.post_engage_nonshed_misses == 0);
  bench::shape_check("every shed restored after the storm",
                     res.storms_exited > 0 && res.restores == res.sheds &&
                         res.shed_count_end == 0);
  bench::shape_check("every transition audit-recorded (log covers stats)",
                     res.transitions_logged >=
                         res.sheds + res.restores + res.drains +
                             res.storms_entered + res.storms_exited);
  bench::shape_check("zero invariant-audit violations in both runs",
                     base.audit_violations == 0 && res.audit_violations == 0);

  std::printf("total wall %.2fs\n", wall.seconds());

  // ---- JSON record (schema: docs/PERFORMANCE.md) ----
  bench::JsonObject j;
  j.field("benchmark", std::string("ablate_smi_resilience"));
  j.field("mode", std::string(args.full ? "full" : "quick"));
  j.field("seed", static_cast<std::uint64_t>(args.seed));
  j.field("horizon_ms", static_cast<std::uint64_t>(horizon / 1000000));
  {
    std::string arr = "[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const AccuracyCell& c = cells[i];
      bench::JsonObject cj;
      cj.field("label", c.label);
      cj.field("burst", std::string(c.burst ? "yes" : "no"));
      cj.field("truth_ns", c.truth_ns);
      cj.field("est_ns", c.est_ns);
      cj.field("ratio", c.ratio);
      cj.field("ewma", c.ewma);
      cj.field("episodes", c.episodes);
      cj.field("smis", c.smis);
      if (i > 0) arr += ", ";
      arr += cj.str();
    }
    arr += "]";
    j.raw("accuracy_cells", arr);
  }
  j.raw("baseline", ab_json(base));
  j.raw("resilient", ab_json(res));
  if (!j.write_file(args.json)) {
    std::fprintf(stderr, "warning: cannot write %s\n", args.json.c_str());
    return 1;
  }
  std::printf("wrote %s\n", args.json.c_str());
  return 0;
}
