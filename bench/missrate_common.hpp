// Shared sweep for Figures 6-9: deadline miss rate and miss time as a
// function of period (tau) and slice (% of period), with admission control
// disabled so infeasible constraints can be observed.
//
// Every (tau, sigma) cell is an independent simulation with its own System
// and a seed that depends only on --seed, so the sweep shards across host
// cores via bench::parallel_for_index.  Results are gathered into an
// order-preserving array and printed after the sweep: a --threads=N run is
// bit-identical to --threads=1.
#pragma once

#include <vector>

#include "common.hpp"

namespace bench {

struct MissPoint {
  hrt::sim::Nanos period;
  int slice_pct;
  double miss_rate;     // [0, 1]
  double miss_time_us;  // mean lateness of late completions
  double miss_time_std_us;
  std::uint64_t arrivals;
};

inline MissPoint measure_miss(const hrt::hw::MachineSpec& base_spec,
                              std::uint64_t seed, hrt::sim::Nanos period,
                              int slice_pct, hrt::sim::Nanos horizon) {
  using namespace hrt;
  System::Options o;
  o.spec = base_spec;
  o.spec.num_cpus = 4;
  o.seed = seed;
  o.sched.admission_enabled = false;  // let infeasible constraints through
  // Accumulate-mode invariant audits (docs/AUDIT.md): the scheduler state is
  // checked every pass even in the deliberately infeasible cells; violations
  // go to stderr below without disturbing the figure output.
  o.audit.enabled = true;
  System sys(std::move(o));
  sys.boot();

  const sim::Nanos slice = period * slice_pct / 100;
  auto behavior = std::make_unique<nk::FnBehavior>(
      [period, slice](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(
              rt::Constraints::periodic(sim::millis(1), period, slice));
        }
        // Chunks comfortably larger than the slice so the thread always has
        // work; the scheduler's budget enforcement does the slicing.
        return nk::Action::compute(sim::millis(2));
      });
  nk::Thread* t = sys.spawn("sweep", std::move(behavior), 1);
  sys.run_for(horizon);

  if (sys.auditor().total_violations() > 0) {
    std::fprintf(stderr,
                 "[audit] %llu invariant violations (period=%lld pct=%d)\n",
                 (unsigned long long)sys.auditor().total_violations(),
                 (long long)period, slice_pct);
  }

  MissPoint p{};
  p.period = period;
  p.slice_pct = slice_pct;
  p.arrivals = t->rt.arrivals;
  p.miss_rate = t->rt.arrivals > 0 ? static_cast<double>(t->rt.misses) /
                                         static_cast<double>(t->rt.arrivals)
                                   : 0.0;
  p.miss_time_us = t->rt.miss_ns.mean() / 1000.0;
  p.miss_time_std_us = t->rt.miss_ns.stddev() / 1000.0;
  return p;
}

inline std::vector<hrt::sim::Nanos> sweep_periods(
    const hrt::hw::MachineSpec& spec) {
  using hrt::sim::micros;
  std::vector<hrt::sim::Nanos> ps = {micros(1000), micros(100), micros(50),
                                     micros(40), micros(30), micros(20),
                                     micros(10)};
  if (spec.name == "r415") ps.push_back(micros(4));
  return ps;
}

/// Run the full sweep (sharded across args.threads workers) and print the
/// figure's series (one row per period, columns = slice %).  With
/// args.json set, also write the per-point results as a JSON record.
inline std::vector<MissPoint> run_sweep(const hrt::hw::MachineSpec& spec,
                                        const Args& args, bool print_rate) {
  using namespace hrt;
  const auto periods = sweep_periods(spec);
  constexpr int kPctLo = 10;
  constexpr int kPctHi = 90;
  constexpr int kPctStep = 10;
  constexpr int kPctCount = (kPctHi - kPctLo) / kPctStep + 1;

  struct Job {
    sim::Nanos period;
    int pct;
    sim::Nanos horizon;
  };
  std::vector<Job> jobs;
  for (sim::Nanos period : periods) {
    // Horizon: enough arrivals for a stable rate.
    const std::uint64_t want_arrivals = args.full ? 20000 : 3000;
    sim::Nanos horizon = static_cast<sim::Nanos>(want_arrivals) * period;
    if (horizon > sim::seconds(4)) horizon = sim::seconds(4);
    if (horizon < sim::millis(30)) horizon = sim::millis(30);
    for (int pct = kPctLo; pct <= kPctHi; pct += kPctStep) {
      jobs.push_back(Job{period, pct, horizon});
    }
  }

  Stopwatch wall;
  std::vector<MissPoint> points(jobs.size());
  parallel_for_index(jobs.size(), args.threads, [&](std::size_t i) {
    const Job& j = jobs[i];
    points[i] = measure_miss(spec, args.seed, j.period, j.pct, j.horizon);
  });
  const double wall_s = wall.seconds();

  std::printf("\n%-9s", "period");
  for (int pct = kPctLo; pct <= kPctHi; pct += kPctStep) {
    std::printf(" %8d%%", pct);
  }
  std::printf("\n");
  for (std::size_t row = 0; row < periods.size(); ++row) {
    std::printf("%6lld us", (long long)(periods[row] / 1000));
    for (int col = 0; col < kPctCount; ++col) {
      const MissPoint& p = points[row * kPctCount + col];
      if (print_rate) {
        std::printf(" %8.1f", p.miss_rate * 100.0);
      } else {
        std::printf(" %8.2f", p.miss_time_us);
      }
    }
    std::printf("\n");
  }
  std::printf("[sweep] %zu points, %u threads, %.2f s wall\n", points.size(),
              args.threads, wall_s);

  if (!args.json.empty()) {
    std::string cells = "[";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const MissPoint& p = points[i];
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"period_ns\": %lld, \"slice_pct\": %d, "
                    "\"miss_rate\": %.17g, \"arrivals\": %llu}",
                    i > 0 ? ", " : "", (long long)p.period, p.slice_pct,
                    p.miss_rate, (unsigned long long)p.arrivals);
      cells += buf;
    }
    cells += "]";
    JsonObject j;
    j.field("machine", std::string(spec.name));
    j.field("mode", std::string(args.full ? "full" : "quick"));
    j.field("seed", static_cast<std::uint64_t>(args.seed));
    j.field("threads", static_cast<std::uint64_t>(args.threads));
    j.field("wall_s", wall_s);
    j.raw("points", cells);
    if (!j.write_file(args.json)) {
      std::fprintf(stderr, "warning: cannot write %s\n", args.json.c_str());
    }
  }
  return points;
}

}  // namespace bench
