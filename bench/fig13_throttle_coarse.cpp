// Figure 13: resource control with commensurate performance, coarsest
// granularity, 255 CPUs, with barriers.
//
// "Regardless of the period selected, the performance of the benchmark is
// cleanly controlled by the time resources allocated": execution time is
// proportional to 1 / utilization (= period/slice), for every period.
#include "bsp_common.hpp"

int main(int argc, char** argv) {
  using namespace hrt;
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header(
      "Figure 13: throttling a 255-CPU coarse-grain BSP run (with barriers); "
      "execution time vs utilization (= sigma/tau)",
      "time ~ work / utilization for every period: clean resource control");

  const std::uint32_t p = args.full ? 255 : 64;
  const auto base = bench::coarse_cfg(p, args.full);
  const auto periods = bench::throttle_periods(args.full);

  const auto jobs = bench::sweep_jobs(periods, 10, 90, args.full ? 10 : 20);
  const auto pts =
      bench::run_rt_sweep(base, jobs, args.seed, /*barrier=*/true,
                          args.threads);

  std::printf("\n%10s %8s %8s %14s %18s\n", "period", "slice%", "util",
              "time (ms)", "time*util (ms)");
  double min_tu = 1e300;
  double max_tu = 0.0;
  bool all_ok = true;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const bench::BspPoint& pt = pts[i];
    all_ok = all_ok && pt.ok;
    const double t_ms = static_cast<double>(pt.time) / 1e6;
    const double tu = t_ms * pt.util;
    std::printf("%7lld us %7d%% %8.2f %14.2f %18.2f\n",
                (long long)(jobs[i].period / 1000), jobs[i].pct, pt.util, t_ms,
                tu);
    if (pt.ok) {
      min_tu = std::min(min_tu, tu);
      max_tu = std::max(max_tu, tu);
    }
  }
  auto ap = bench::run_aperiodic_point(base, args.seed, true);
  std::printf("%10s %8s %8.2f %14.2f %18.2f\n", "aperiodic", "-", 1.0,
              static_cast<double>(ap.time) / 1e6,
              static_cast<double>(ap.time) / 1e6);

  bench::shape_check("all configurations admitted and completed", all_ok);
  // Clean throttling: time * util is nearly constant across every
  // (period, slice) combination — within ~25% of each other.
  bench::shape_check("time ~ work/util across all periods (spread < 30%)",
                     all_ok && max_tu / min_tu < 1.30);
  return 0;
}
