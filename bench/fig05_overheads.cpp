// Figure 5: breakdown of local scheduler overheads on Phi and R415.
//
// "On the Phi, the software overhead is about 6000 cycles ... About half of
// the overhead involves the scheduling pass itself, while the rest is spent
// in interrupt processing and the context switch."  The R415's faster
// hardware threads cut the cycle costs roughly in half, which is what moves
// the feasibility edge from ~10 us down to ~4 us (Figures 6/7).
#include "common.hpp"

namespace {

void run_machine(const hrt::hw::MachineSpec& spec, std::uint64_t seed,
                 hrt::sim::Nanos horizon) {
  using namespace hrt;
  System::Options o;
  o.spec = spec;
  o.spec.num_cpus = 4;
  o.seed = seed;
  System sys(std::move(o));
  sys.boot();

  auto behavior = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::millis(1), sim::micros(100), sim::micros(50)));
        }
        return nk::Action::compute(sim::micros(25));
      });
  sys.spawn("load", std::move(behavior), 1);
  sys.run_for(horizon);

  const auto& oh = sys.kernel().executor(1).overheads();
  const double irq = oh.irq.mean();
  const double pass = oh.pass.mean();
  const double other = oh.other.mean();
  const double sw = oh.swtch.mean();
  std::printf("\n%s (%.1f GHz), %llu scheduler passes:\n", spec.name.c_str(),
              spec.freq.ghz(), (unsigned long long)oh.passes);
  std::printf("  %-10s %10s %10s\n", "component", "avg (cyc)", "std (cyc)");
  std::printf("  %-10s %10.0f %10.0f\n", "IRQ", irq, oh.irq.stddev());
  std::printf("  %-10s %10.0f %10.0f\n", "Other", other, oh.other.stddev());
  std::printf("  %-10s %10.0f %10.0f\n", "Resched", pass, oh.pass.stddev());
  std::printf("  %-10s %10.0f %10.0f\n", "Switch", sw, oh.swtch.stddev());
  const double total = irq + pass + other + sw;
  std::printf("  %-10s %10.0f cycles  (%.1f us)\n", "TOTAL", total,
              total / spec.freq.ghz() / 1000.0);

  if (spec.name == "phi") {
    bench::shape_check("Phi total overhead ~6000 cycles (paper: ~6000)",
                       total > 4500 && total < 7500);
    bench::shape_check("resched (pass) is roughly half the total",
                       pass / total > 0.3 && pass / total < 0.6);
  } else {
    bench::shape_check("R415 cycle overheads well below Phi's",
                       total < 3500);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header("Figure 5: local scheduler overhead breakdown (Phi, R415)",
                "Phi ~6000 cycles/invocation, ~half in the pass; R415 lower");
  const hrt::sim::Nanos horizon =
      args.full ? hrt::sim::seconds(5) : hrt::sim::millis(500);
  run_machine(hrt::hw::MachineSpec::phi(), args.seed, horizon);
  run_machine(hrt::hw::MachineSpec::r415(), args.seed, horizon);
  return 0;
}
