// Ablation (section 3.6): eager vs lazy EDF under SMI "missing time".
//
// "In many hard real-time schedulers, a context switch to a newly arrived
// thread is delayed until the last possible moment at which its deadline
// can still be met. ... the consequence of missing time due to SMIs is that
// the thread may be resumed at a point close to its deadline, but then be
// interrupted by an SMI that pushes the thread's completion past its
// deadline.  In our local scheduler, in contrast, we never delay switching
// to a thread."
//
// Setup: one periodic RT thread sharing a CPU with an aperiodic hog (so the
// lazy variant actually delays), under an aggressive SMI storm.
#include "common.hpp"

using namespace hrt;

namespace {

double miss_rate(bool eager, std::uint64_t seed) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  // SMI storm: ~every 400 us, stealing ~10 us each time.
  o.spec.smi.enabled = true;
  o.spec.smi.mean_interval_ns = sim::micros(400);
  o.spec.smi.min_duration_ns = sim::micros(6);
  o.spec.smi.mean_duration_ns = sim::micros(10);
  o.spec.smi.max_duration_ns = sim::micros(16);
  o.seed = seed;
  o.sched.eager = eager;
  System sys(std::move(o));
  sys.boot();

  // Aperiodic hog keeps the CPU busy between RT slices.
  sys.spawn("hog", std::make_unique<nk::BusyLoopBehavior>(sim::micros(50)),
            1);
  auto behavior = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::millis(1), sim::micros(100), sim::micros(30)));
        }
        return nk::Action::compute(sim::micros(15));
      });
  nk::Thread* t = sys.spawn("rt", std::move(behavior), 1);
  sys.run_for(sim::millis(400));
  return t->rt.arrivals > 0 ? static_cast<double>(t->rt.misses) /
                                  static_cast<double>(t->rt.arrivals)
                            : 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header(
      "Ablation: eager vs lazy EDF under an SMI storm "
      "(tau=100us sigma=30us + aperiodic hog, SMIs ~10us every ~400us)",
      "eager scheduling starts early to end early, absorbing missing time; "
      "lazy scheduling leaves no slack and misses");

  const double eager = miss_rate(true, args.seed);
  const double lazy = miss_rate(false, args.seed);
  std::printf("\n  eager EDF miss rate: %6.2f%%\n", eager * 100.0);
  std::printf("  lazy  EDF miss rate: %6.2f%%\n", lazy * 100.0);

  bench::shape_check("eager absorbs the SMI storm (miss rate ~0%)",
                     eager < 0.01);
  bench::shape_check("lazy EDF misses under missing time",
                     lazy > 5.0 * eager && lazy > 0.005);
  return 0;
}
