// Ablation (section 3.5): interrupt steering and segregation.
//
// Three placements of a tight periodic thread while a device hammers CPU 0
// with interrupts:
//   1. interrupt-free partition (CPU 1): device interrupts never arrive;
//   2. interrupt-laden CPU 0 *with* APIC TPR steering: interrupts latch
//      while the RT thread runs and are taken afterwards;
//   3. interrupt-laden CPU 0 with steering disabled: handlers preempt the
//      RT thread and eat its slack.
#include "common.hpp"

using namespace hrt;

namespace {

double run_case(std::uint32_t rt_cpu, bool steering, std::uint64_t seed) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  o.seed = seed;
  o.tpr_steering = steering;
  o.smi_enabled = false;  // isolate the device-interrupt effect
  System sys(std::move(o));

  // A chatty device: ~50k interrupts/s, each with a 6000-cycle handler.
  auto& dev = sys.machine().add_device(0x40, hw::Device::Arrival::kPoisson,
                                       sim::micros(20));
  sys.kernel().register_device_handler(0x40, 6000);
  sys.boot();
  sys.kernel().apply_interrupt_partition();
  dev.start();

  auto behavior = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::millis(1), sim::micros(50), sim::micros(35)));
        }
        return nk::Action::compute(sim::micros(10));
      });
  nk::Thread* t = sys.spawn("rt", std::move(behavior), rt_cpu);
  sys.run_for(sim::millis(300));
  return t->rt.arrivals > 0 ? static_cast<double>(t->rt.misses) /
                                  static_cast<double>(t->rt.arrivals)
                            : 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header(
      "Ablation: interrupt steering (tau=50us sigma=35us; device storm "
      "~50k irq/s with 6000-cycle handlers on CPU 0)",
      "the interrupt-free partition and TPR steering both protect RT "
      "threads; disabling steering on a laden CPU causes misses");

  const double irq_free = run_case(1, true, args.seed);
  const double laden_steered = run_case(0, true, args.seed);
  const double laden_exposed = run_case(0, false, args.seed);

  std::printf("\n%-38s %12s\n", "placement", "miss rate %");
  std::printf("%-38s %12.2f\n", "CPU 1 (interrupt-free partition)",
              irq_free * 100.0);
  std::printf("%-38s %12.2f\n", "CPU 0, TPR steering on", laden_steered * 100.0);
  std::printf("%-38s %12.2f\n", "CPU 0, TPR steering off",
              laden_exposed * 100.0);

  bench::shape_check("interrupt-free partition: no misses", irq_free < 0.001);
  bench::shape_check("TPR steering protects RT on the laden CPU",
                     laden_steered < 0.01);
  bench::shape_check("without steering, the storm causes misses",
                     laden_exposed > 10.0 * (laden_steered + 0.0001));
  return 0;
}
