// Shared measurement for Figures 11/12: cross-CPU synchronization of the
// local schedulers' context-switch events for a hard real-time group.
//
// "Each time a local scheduler is invoked and context-switches to a thread
// in the group, it records the time of this event.  A point in the graph
// represents the maximum difference between the times of these events
// across the local schedulers."  The measurement here uses ground-truth
// (oscilloscope-equivalent) time, so it includes the residual TSC error.
#pragma once

#include <algorithm>
#include <set>
#include <vector>

#include "common.hpp"
#include "group/group_admission.hpp"

namespace bench {

struct SyncResult {
  std::size_t invocations = 0;  // aligned switch events compared
  double avg_diff_cycles = 0.0;
  double max_diff_cycles = 0.0;
  // Variation: spread of the per-invocation max-difference around its mean;
  // this is what phase correction cannot remove.
  double variation_cycles = 0.0;
  bool ok = false;
};

inline SyncResult measure_group_sync(std::uint32_t n, bool phase_correction,
                                     std::uint64_t seed,
                                     hrt::sim::Nanos horizon) {
  using namespace hrt;
  System::Options o;
  o.spec = hw::MachineSpec::phi();
  o.seed = seed;
  System sys(std::move(o));
  sys.boot();

  grp::ThreadGroup* group = sys.groups().create("sync", n);
  std::set<nk::Thread::Id> ids;
  std::vector<grp::GroupAdmitThenBehavior*> behaviors;
  const sim::Nanos phase = sim::millis(2) + n * sim::micros(60);
  for (std::uint32_t r = 0; r < n; ++r) {
    auto inner = std::make_unique<nk::BusyLoopBehavior>(sim::micros(20));
    auto b = std::make_unique<grp::GroupAdmitThenBehavior>(
        *group,
        rt::Constraints::periodic(phase, sim::micros(100), sim::micros(50)),
        std::move(inner));
    b->protocol_mutable().set_phase_correction(phase_correction);
    behaviors.push_back(b.get());
    nk::Thread* t =
        sys.spawn("s" + std::to_string(r), std::move(b), 1 + r);
    ids.insert(t->id);
  }

  // Wait for all admissions, then trace the steady state.
  for (int spin = 0; spin < 1000; ++spin) {
    bool all = true;
    for (auto* b : behaviors) {
      if (!b->protocol().done()) all = false;
    }
    if (all) break;
    sys.run_for(sim::millis(1));
  }
  SyncResult res;
  for (auto* b : behaviors) {
    if (!b->protocol().succeeded()) return res;  // ok = false
  }
  sys.machine().trace().enable();
  sys.run_for(horizon);

  // Per CPU, ordered switch-to-group-member times (true time).
  std::vector<std::vector<sim::Nanos>> series(n);
  for (const auto& r : sys.machine().trace().records()) {
    if (r.kind != sim::TraceKind::kSwitch) continue;
    if (ids.count(static_cast<nk::Thread::Id>(r.value)) == 0) continue;
    if (r.cpu < 1 || r.cpu > n) continue;
    series[r.cpu - 1].push_back(r.time);
  }
  std::size_t len = series[0].size();
  for (const auto& s : series) len = std::min(len, s.size());
  if (len < 3) return res;

  const auto& spec = sys.machine().spec();
  sim::RunningStats diff;
  for (std::size_t k = 1; k + 1 < len; ++k) {
    sim::Nanos lo = series[0][k];
    sim::Nanos hi = series[0][k];
    for (std::uint32_t c = 1; c < n; ++c) {
      lo = std::min(lo, series[c][k]);
      hi = std::max(hi, series[c][k]);
    }
    diff.add(bench::to_cycles(spec, hi - lo));
  }
  res.invocations = diff.count();
  res.avg_diff_cycles = diff.mean();
  res.max_diff_cycles = diff.max();
  res.variation_cycles = diff.max() - diff.min();
  res.ok = true;
  return res;
}

}  // namespace bench
