// Figure 7: deadline miss rate on the R415 (same sweep as Figure 6 plus a
// 4 us period).
//
// "These lower overheads in turn make possible even smaller scheduling
// constraints ... Here, the edge of feasibility is about 4 us."
#include "missrate_common.hpp"

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header("Figure 7: deadline miss rate vs (tau, sigma) on R415 "
                "(admission control disabled); cells = miss rate %",
                "feasibility edge ~4 us: finer constraints than the Phi");
  auto points = bench::run_sweep(hrt::hw::MachineSpec::r415(), args,
                                 /*print_rate=*/true);

  // The R415 must be feasible at constraints where the Phi already fails:
  // 10 us period with a 50% slice.
  bool r415_10us_ok = false;
  bool r415_4us_edge = false;
  for (const auto& p : points) {
    if (p.period == hrt::sim::micros(10) && p.slice_pct == 50 &&
        p.miss_rate < 0.01) {
      r415_10us_ok = true;
    }
    if (p.period == hrt::sim::micros(4) && p.slice_pct >= 70 &&
        p.miss_rate > 0.5) {
      r415_4us_edge = true;
    }
  }
  bench::shape_check("10us/50% feasible on R415 (infeasible on Phi)",
                     r415_10us_ok);
  bench::shape_check("edge of feasibility near 4 us", r415_4us_edge);
  return 0;
}
