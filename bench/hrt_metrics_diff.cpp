// hrt-metrics-diff: compare two hrt-metrics-v1 snapshots
// (telemetry/export.hpp write_metrics_json) and print per-key deltas —
// cross-PR perf triage over metrics dumps (docs/OBSERVABILITY.md).
//
//   hrt_metrics_diff [--all] [--limit=N] BEFORE.json AFTER.json
//
// Exit status: 0 = diff printed (possibly empty), 2 = usage error,
// 3 = a snapshot failed to load or parse.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/metrics_diff.hpp"

namespace {

bool read_file(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  *out = os.str();
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: hrt_metrics_diff [--all] [--limit=N] BEFORE AFTER\n"
               "  --all       include keys whose values did not change\n"
               "  --limit=N   show at most N rows (default 40; 0 = all)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool all = false;
  std::size_t limit = 40;
  const char* paths[2] = {nullptr, nullptr};
  int npaths = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--all") == 0) {
      all = true;
    } else if (std::strncmp(argv[i], "--limit=", 8) == 0) {
      limit = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (npaths < 2) {
      paths[npaths++] = argv[i];
    } else {
      return usage();
    }
  }
  if (npaths != 2) return usage();

  hrt::telemetry::MetricsSnapshot snaps[2];
  for (int i = 0; i < 2; ++i) {
    std::string text;
    if (!read_file(paths[i], &text)) {
      std::fprintf(stderr, "hrt_metrics_diff: cannot read %s\n", paths[i]);
      return 3;
    }
    snaps[i] = hrt::telemetry::parse_metrics_snapshot(text);
    if (!snaps[i].ok) {
      std::fprintf(stderr, "hrt_metrics_diff: %s: %s\n", paths[i],
                   snaps[i].error.c_str());
      return 3;
    }
  }

  const auto rows =
      hrt::telemetry::diff_metrics(snaps[0], snaps[1], /*only_changed=*/!all);
  std::printf("%s -> %s (%zu keys before, %zu after, %zu rows)\n", paths[0],
              paths[1], snaps[0].values.size(), snaps[1].values.size(),
              rows.size());
  std::fputs(hrt::telemetry::format_metrics_diff(rows, limit).c_str(), stdout);
  return 0;
}
