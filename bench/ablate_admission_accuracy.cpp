// Ablation (section 3.2): acceptance ratio of the admission-control
// policies over random task sets.
//
// "This potentially allows more sophisticated admission control algorithms
// that can achieve higher utilization.  We developed one prototype that did
// admission for a periodic thread-only model by simulating the local
// scheduler for a hyperperiod."  This bench quantifies that headroom: for
// UUniFast task sets at each target utilization, what fraction does each
// policy admit — and (ground truth) what fraction is actually EDF-feasible?
#include <vector>

#include "common.hpp"
#include "rt/taskset_gen.hpp"

using namespace hrt;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header(
      "Ablation: admission policy acceptance ratio vs target utilization "
      "(UUniFast task sets, n=5, available fraction = 0.79)",
      "EDF test is exact; the Liu-Layland RM bound leaves utilization on "
      "the table; RTA and the hyperperiod simulation recover most of it");

  const int trials = args.full ? 2000 : 400;
  const double avail = 0.79;
  sim::Rng rng(args.seed);

  std::printf("\n%8s %8s %8s %8s %8s  (acceptance %%)\n", "target U", "EDF",
              "RM-LL", "RM-RTA", "SIM");
  double ll_at_60 = 0;
  double edf_at_60 = 0;
  double sim_at_60 = 0;
  bool sound = true;  // no policy may admit what EDF (exact) rejects
  for (double target = 0.40; target <= 0.85; target += 0.05) {
    int edf_ok = 0;
    int ll_ok = 0;
    int rta_ok = 0;
    int sim_ok = 0;
    for (int t = 0; t < trials; ++t) {
      rt::TaskSetParams p;
      p.n = 5;
      p.total_utilization = target;
      p.min_period = sim::micros(200);
      p.max_period = sim::millis(4);
      p.period_granule = sim::micros(200);
      const auto set = rt::generate_taskset(p, rng);
      const bool edf = rt::edf_admissible(set, avail);
      const bool ll = rt::rm_ll_admissible(set, avail);
      const bool rta = rt::rm_rta_admissible(set, avail);
      rt::SimAdmissionConfig sc;
      sc.max_horizon = sim::seconds(2);
      const bool sim_adm = rt::simulate_edf_admission(set, sc).admissible &&
                           rt::edf_admissible(set, avail);
      // (the simulation models a full CPU; combined with the reservation
      // limit as the deployed policy does)
      edf_ok += edf;
      ll_ok += ll;
      rta_ok += rta;
      sim_ok += sim_adm;
      if (ll && !edf) sound = false;  // LL must be conservative
    }
    const double f = 100.0 / trials;
    std::printf("%8.2f %8.1f %8.1f %8.1f %8.1f\n", target, edf_ok * f,
                ll_ok * f, rta_ok * f, sim_ok * f);
    if (target > 0.59 && target < 0.61) {
      edf_at_60 = edf_ok * f;
      ll_at_60 = ll_ok * f;
      sim_at_60 = sim_ok * f;
    }
  }

  bench::shape_check("RM-LL is sound (never admits what exact EDF rejects)",
                     sound);
  bench::shape_check("RM-LL leaves utilization unclaimed at U=0.60",
                     ll_at_60 < edf_at_60 - 5.0);
  bench::shape_check("simulation-based admission tracks the exact test",
                     sim_at_60 > edf_at_60 - 10.0);
  return 0;
}
