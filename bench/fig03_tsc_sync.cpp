// Figure 3: cross-CPU cycle counter synchronization on the Phi.
// "We keep cycle counters within 1000 cycles across 256 CPUs."
//
// Boots the 256-CPU Phi model, runs the boot-time calibration (section 3.4),
// and histograms each CPU's residual offset versus CPU 0.
#include <iostream>

#include "common.hpp"
#include "sim/histogram.hpp"

int main(int argc, char** argv) {
  using namespace hrt;
  const bench::Args args = bench::parse_args(argc, argv);

  bench::header(
      "Figure 3: cross-CPU TSC synchronization after boot calibration",
      "all 256 CPUs agree about wall clock to within ~1000 cycles");

  System::Options o;
  o.spec = hw::MachineSpec::phi();
  o.seed = args.seed;
  System sys(std::move(o));
  sys.boot();

  const auto& calib = sys.kernel().calibration();
  sim::Histogram hist(0.0, 1100.0, 11);
  sim::RunningStats stats;
  for (std::size_t i = 1; i < calib.residual_cycles.size(); ++i) {
    const auto abs_cycles =
        static_cast<double>(calib.residual_cycles[i] < 0
                                ? -calib.residual_cycles[i]
                                : calib.residual_cycles[i]);
    hist.add(abs_cycles);
    stats.add(abs_cycles);
  }

  std::printf("\n|TSC offset vs CPU 0| after calibration, %zu CPUs:\n\n",
              calib.residual_cycles.size() - 1);
  hist.print(std::cout, "cyc");
  std::cout.flush();
  std::printf("\nmean=%.0f cycles  stddev=%.0f  max=%.0f\n", stats.mean(),
              stats.stddev(), stats.max());

  bench::shape_check("max residual <= ~1000 cycles (paper: ~1000)",
                     stats.max() <= 1100.0);
  bench::shape_check("sub-microsecond agreement (1000 cy = 0.77 us @1.3GHz)",
                     stats.max() / 1.3e9 * 1e6 < 1.0);
  return 0;
}
