// Figure 11: cross-CPU scheduler synchronization in an 8-thread group
// admitted with a periodic constraint on the Phi.
//
// "Context switch events on the local schedulers happen within a few 1000s
// of cycles.  ... phase correction is disabled, hence there is a bias ...
// the 'first' member of the group is on average about 5000 cycles ahead.
// This average bias is eliminated via phase correction.  What is important
// ... is the variation ... no more than 4000 cycles (3 us)."
#include "group_sync_common.hpp"

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header(
      "Figure 11: cross-CPU switch-event sync, 8-thread periodic group, Phi",
      "bias of a few 1000 cycles without phase correction; variation "
      "~4000 cycles; phase correction removes the bias");

  const hrt::sim::Nanos horizon =
      args.full ? hrt::sim::millis(1000) : hrt::sim::millis(100);
  auto uncorrected =
      bench::measure_group_sync(8, /*phase_correction=*/false, args.seed,
                                horizon);
  auto corrected =
      bench::measure_group_sync(8, /*phase_correction=*/true, args.seed,
                                horizon);

  std::printf("\n%-24s %12s %12s %12s %12s\n", "configuration", "events",
              "avg diff", "max diff", "variation");
  std::printf("%-24s %12zu %9.0f cy %9.0f cy %9.0f cy\n",
              "phase corr. disabled", uncorrected.invocations,
              uncorrected.avg_diff_cycles, uncorrected.max_diff_cycles,
              uncorrected.variation_cycles);
  std::printf("%-24s %12zu %9.0f cy %9.0f cy %9.0f cy\n",
              "phase corr. enabled", corrected.invocations,
              corrected.avg_diff_cycles, corrected.max_diff_cycles,
              corrected.variation_cycles);

  bench::shape_check("both configurations admitted and ran",
                     uncorrected.ok && corrected.ok);
  bench::shape_check(
      "uncorrected bias visible (avg diff thousands of cycles)",
      uncorrected.avg_diff_cycles > 1000.0);
  bench::shape_check(
      "phase correction shrinks the average difference",
      corrected.avg_diff_cycles < 0.7 * uncorrected.avg_diff_cycles);
  bench::shape_check("corrected sync within ~4000 cycles (~3 us)",
                     corrected.avg_diff_cycles < 4000.0);
  return 0;
}
