// Figure 14: resource control at the finest granularity (with barriers).
//
// "As the granularity shrinks, proportionate control remains ... there is
// more variation across the different period/slice combinations with the
// same utilization because the overall task execution time becomes similar
// to the timing constraints themselves."
#include "bsp_common.hpp"

int main(int argc, char** argv) {
  using namespace hrt;
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header(
      "Figure 14: throttling a fine-grain BSP run (with barriers); "
      "execution time vs utilization",
      "throttling stays proportionate, with more spread than the coarse case");

  const std::uint32_t p = args.full ? 255 : 64;
  const auto base = bench::fine_cfg(p, args.full);
  const auto periods = bench::throttle_periods(args.full);

  const auto jobs = bench::sweep_jobs(periods, 10, 90, args.full ? 10 : 20);
  const auto pts =
      bench::run_rt_sweep(base, jobs, args.seed, /*barrier=*/true,
                          args.threads);

  std::printf("\n%10s %8s %8s %14s %18s\n", "period", "slice%", "util",
              "time (ms)", "time*util (ms)");
  double min_tu = 1e300;
  double max_tu = 0.0;
  bool all_ok = true;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const bench::BspPoint& pt = pts[i];
    all_ok = all_ok && pt.ok;
    const double t_ms = static_cast<double>(pt.time) / 1e6;
    const double tu = t_ms * pt.util;
    std::printf("%7lld us %7d%% %8.2f %14.2f %18.2f\n",
                (long long)(jobs[i].period / 1000), jobs[i].pct, pt.util, t_ms,
                tu);
    if (pt.ok) {
      min_tu = std::min(min_tu, tu);
      max_tu = std::max(max_tu, tu);
    }
  }

  bench::shape_check("all configurations admitted and completed", all_ok);
  bench::shape_check("throttling still roughly proportionate (spread < 2.5x)",
                     all_ok && max_tu / min_tu < 2.5);
  bench::shape_check("more spread than the coarse-grain case (> 15%)",
                     max_tu / min_tu > 1.15);
  return 0;
}
