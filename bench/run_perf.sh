#!/usr/bin/env bash
# Regenerate the performance snapshots:
#
#   bench/run_perf.sh [--full] [build-dir]
#
# Produces in the current directory:
#   BENCH_engine.json    — micro_engine: timer-wheel vs legacy engine
#                          (events/sec, p50/p99 schedule/cancel latency)
#   BENCH_engine_scaling.json — micro_engine: sharded parallel-commit engine,
#                          events/sec vs host threads {1,2,4,8} on a 4096-CPU
#                          config; this script fails if the run is not
#                          bit-identical across thread counts, or (on hosts
#                          with >= 8 cores) if 8 threads deliver < 2x the
#                          1-thread events/sec
#   BENCH_placement.json — ablate_placement: pure partitioning policies vs
#                          semi-partitioned overflow (admitted utilization,
#                          zero-miss executions, replay-oracle verdict)
#   BENCH_smi_resilience.json — ablate_smi_resilience: missing-time estimator
#                          accuracy vs SmiSource ground truth + storm-shedding
#                          A/B (baseline misses, resilient post-shed zero)
#   BENCH_telemetry.json — ablate_telemetry_overhead: flight-recorder A/B
#                          (zero added misses with telemetry on) + record
#                          cost vs pass span; this script fails if the
#                          overhead fraction reaches 2% (docs/OBSERVABILITY.md)
#   BENCH_spawn.json     — ablate_spawn: batched spawn + lock-free admission
#                          fast path; this script fails if batch throughput
#                          is < 5x the serial-slow cell at 1024 specs, or if
#                          the fast-path decision p99 exceeds 1 us
#   BENCH_cluster.json   — ablate_cluster: node-crash failover vs no-failover
#                          baseline; this script fails on any post-failover
#                          deadline miss or if failover availability is not
#                          strictly above the baseline
#   BENCH_figures.json   — wall time + shape-check results per figure binary
#
# The committed PR-over-PR snapshots live in bench/snapshots/; refresh them
# with:  bench/run_perf.sh && cp BENCH_*.json bench/snapshots/
#
# Schema: docs/PERFORMANCE.md.
set -euo pipefail

MODE="quick"
MODE_FLAG=""
if [ "${1:-}" = "--full" ]; then
  MODE="full"
  MODE_FLAG="--full"
  shift
fi
BUILD="${1:-build}"
BIN="$BUILD/bench"

if [ ! -d "$BIN" ]; then
  echo "error: $BIN not found; build first: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

now_ns() { date +%s%N; }

# Provenance: every BENCH_*.json gets an "env" object (host cores, compiler,
# build flags, git SHA).  The binaries read the SHA from this variable.
HRT_GIT_SHA=$(git -C "$(dirname "$0")" rev-parse HEAD 2>/dev/null || echo unknown)
export HRT_GIT_SHA
HOST_CORES=$(nproc 2>/dev/null || echo 1)

echo "== micro_engine -> BENCH_engine.json + BENCH_engine_scaling.json"
"$BIN/micro_engine" $MODE_FLAG --json=BENCH_engine.json
# Hard gates on the scaling cell: bit-identical runs always; >= 2x events/sec
# at 8 threads over 1 thread when the host actually has 8 cores.
awk -v cores="$HOST_CORES" '
  match($0, /"deterministic": [0-9]+/) {
    det = substr($0, RSTART + 17, RLENGTH - 17) + 0
    if (det != 1) {
      print "error: sharded scaling run not bit-identical across thread counts"
      exit 1
    }
  }
  match($0, /"speedup_8_vs_1": [0-9.eE+-]+/) {
    s = substr($0, RSTART + 18, RLENGTH - 18) + 0
    if (cores + 0 >= 8 && s < 2.0) {
      printf "error: sharded engine speedup %.2fx at 8 threads < 2x\n", s
      exit 1
    }
    printf "sharded engine scaling: %.2fx events/sec at 8 threads (host cores %d)\n", s, cores
  }
' BENCH_engine_scaling.json

echo "== ablate_placement -> BENCH_placement.json"
"$BIN/ablate_placement" $MODE_FLAG --json=BENCH_placement.json

echo "== ablate_smi_resilience -> BENCH_smi_resilience.json"
"$BIN/ablate_smi_resilience" $MODE_FLAG --json=BENCH_smi_resilience.json

echo "== ablate_telemetry_overhead -> BENCH_telemetry.json"
"$BIN/ablate_telemetry_overhead" $MODE_FLAG --json=BENCH_telemetry.json
# Hard gate: the recorder's amortized cost must stay under 2% of the mean
# scheduler pass span (docs/OBSERVABILITY.md).
awk '
  match($0, /"overhead_fraction": [0-9.eE+-]+/) {
    frac = substr($0, RSTART + 21, RLENGTH - 21) + 0
    if (frac >= 0.02) {
      printf "error: telemetry overhead %.4f >= 0.02 of mean pass span\n", frac
      exit 1
    }
    printf "telemetry overhead %.4f of mean pass span (< 0.02)\n", frac
  }
' BENCH_telemetry.json

echo "== ablate_spawn -> BENCH_spawn.json"
"$BIN/ablate_spawn" $MODE_FLAG --json=BENCH_spawn.json
# Hard gates: batched spawn must amortize to >= 5x the serial-slow cell's
# throughput, and the O(1) fast-path admission probe must decide in <= 1 us
# at p99 (docs/PERFORMANCE.md).
awk '
  match($0, /"batch_speedup_vs_serial_slow": [0-9.eE+-]+/) {
    s = substr($0, RSTART + 32, RLENGTH - 32) + 0
    if (s < 5.0) {
      printf "error: batch spawn speedup %.2fx < 5x serial throughput\n", s
      exit 1
    }
    printf "batch spawn speedup %.2fx over serial_slow (>= 5x)\n", s
  }
  match($0, /"fast_decision_p99_ns": [0-9.eE+-]+/) {
    p = substr($0, RSTART + 23, RLENGTH - 23) + 0
    if (p > 1000.0) {
      printf "error: fast-path decision p99 %.0f ns > 1000 ns\n", p
      exit 1
    }
    printf "fast-path decision p99 %.0f ns (<= 1000 ns)\n", p
  }
' BENCH_spawn.json

echo "== ablate_cluster -> BENCH_cluster.json"
"$BIN/ablate_cluster" $MODE_FLAG --json=BENCH_cluster.json
# Hard gates: failover must deliver zero post-failover deadline misses on the
# re-admitted RT work, and strictly more availability than the no-failover
# baseline (docs/CLUSTER.md).
awk '
  match($0, /"post_failover_misses": [0-9]+/) {
    m = substr($0, RSTART + 24, RLENGTH - 24) + 0
    if (m != 0) {
      printf "error: %d post-failover deadline misses (must be 0)\n", m
      exit 1
    }
  }
  match($0, /"availability_failover": [0-9.eE+-]+/) {
    af = substr($0, RSTART + 25, RLENGTH - 25) + 0
  }
  match($0, /"availability_baseline": [0-9.eE+-]+/) {
    ab = substr($0, RSTART + 25, RLENGTH - 25) + 0
    if (af <= ab) {
      printf "error: failover availability %.4f <= baseline %.4f\n", af, ab
      exit 1
    }
    printf "cluster failover availability %.4f > baseline %.4f, zero post-failover misses\n", af, ab
  }
' BENCH_cluster.json

FIGURES="fig03_tsc_sync fig04_scope_trace fig05_overheads fig06_missrate_phi \
fig07_missrate_r415 fig08_misstime_phi fig09_misstime_r415 \
fig10_group_admission fig11_group_sync8 fig12_group_sync_scale \
fig13_throttle_coarse fig14_throttle_fine fig15_barrier_coarse \
fig16_barrier_fine ablate_eager_vs_lazy ablate_util_limit ablate_timer_mode \
ablate_irq_steering ablate_cyclic_executive ablate_admission_accuracy"

echo "== figure sweep -> BENCH_figures.json ($MODE mode)"
{
  printf '{"mode": "%s", "figures": [' "$MODE"
  first=1
  for fig in $FIGURES; do
    out=$(mktemp)
    t0=$(now_ns)
    if "$BIN/$fig" $MODE_FLAG >"$out" 2>&1; then exit_code=0; else exit_code=$?; fi
    t1=$(now_ns)
    wall_s=$(awk "BEGIN {printf \"%.3f\", ($t1 - $t0) / 1e9}")
    pass=$(grep -c '^\[shape PASS\]' "$out" || true)
    fail=$(grep -c '^\[shape FAIL\]' "$out" || true)
    rm -f "$out"
    [ $first -eq 1 ] || printf ', '
    first=0
    printf '{"figure": "%s", "wall_s": %s, "exit": %d, "shape_pass": %d, "shape_fail": %d}' \
      "$fig" "$wall_s" "$exit_code" "$pass" "$fail"
    echo "   $fig: ${wall_s}s (exit $exit_code, shapes $pass pass / $fail fail)" >&2
  done
  printf '], "env": {"host_cores": %s, "git_sha": "%s"}}\n' \
    "$HOST_CORES" "$HRT_GIT_SHA"
} > BENCH_figures.json

echo "wrote BENCH_engine.json BENCH_engine_scaling.json BENCH_placement.json BENCH_smi_resilience.json BENCH_telemetry.json BENCH_spawn.json BENCH_cluster.json BENCH_figures.json"
