// Figure 9: average miss times on the R415 (as Figure 8; includes 4 us).
#include "missrate_common.hpp"

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header("Figure 9: mean miss time (us) vs (tau, sigma) on R415 "
                "(admission control disabled); cells = mean lateness, us",
                "smaller absolute miss times than the Phi (faster CPUs)");
  auto points = bench::run_sweep(hrt::hw::MachineSpec::r415(), args,
                                 /*print_rate=*/false);

  // Paper's Figure 9 y-axis tops out near 4.5 us vs ~10 us for the Phi:
  // smaller absolute lateness, always small relative to the constraint.
  double worst_rel = 0.0;
  double at_4us = 0.0;
  for (const auto& p : points) {
    const double rel =
        p.miss_time_us * 1000.0 / static_cast<double>(p.period);
    if (rel > worst_rel) worst_rel = rel;
    if (p.period == hrt::sim::micros(4) && p.miss_time_us > at_4us) {
      at_4us = p.miss_time_us;
    }
  }
  bench::shape_check("lateness always below one period", worst_rel < 1.0);
  bench::shape_check("4 us constraints miss by only ~4 us (paper: <4.5)",
                     at_4us > 0.0 && at_4us < 5.0);
  return 0;
}
