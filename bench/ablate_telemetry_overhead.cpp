// Telemetry flight-recorder overhead ablation (src/telemetry/).
//
// Phase A is the A/B that justifies leaving the recorder compiled in: the
// fig06-style 4-CPU sweep workload (one periodic per CPU, admission off) is
// run twice per cell with the same seed — telemetry off and telemetry on.
// Because every hook is a pure host-side observer that charges no simulated
// time, the two runs must produce the *same schedule*: identical arrivals
// and identical deadline misses, in the feasible cell and in the
// deliberately infeasible one.  The on-run additionally has to capture the
// full event vocabulary (admission, switches, misses) on all four CPUs.
//
// The overhead claim is then about the host, not the simulation: the batch-
// calibrated cost of one record() push, times the records emitted per
// scheduling pass, must amortize to < 2% of the mean scheduler pass span —
// the budget docs/OBSERVABILITY.md commits to and bench/run_perf.sh gates.
//
// Phase B closes the loop with the export layer: a machine-trace run is
// validated by the EDF replay oracle, adapted through from_sim_trace into
// the Chrome exporter, parsed back with the bundled parser, and the switch
// stream is required to match the machine trace record-for-record.
//
// Output: human-readable tables plus a JSON record (--json=PATH, default
// BENCH_telemetry.json); see docs/PERFORMANCE.md for the schema.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "audit/replay.hpp"
#include "common.hpp"
#include "rt/system.hpp"
#include "telemetry/export.hpp"

namespace {

using namespace hrt;

constexpr std::uint32_t kCpus = 4;
constexpr std::size_t kRingCapacity = 1 << 15;

// ---- Phase A: same-seed A/B, telemetry off vs on ----

struct CellSpec {
  std::string label;
  sim::Nanos period = 0;
  int slice_pct = 0;
  bool feasible = false;
};

struct RunResult {
  std::uint64_t arrivals = 0;
  std::uint64_t misses = 0;
  std::uint64_t passes = 0;
  std::uint64_t events_written = 0;
  std::uint64_t events_dropped = 0;
  std::uint64_t slo_alerts = 0;
  std::uint32_t cpus_with_admit = 0;
  std::uint32_t cpus_with_switch = 0;
  std::uint32_t cpus_with_miss = 0;
  double span_sum_ns = 0;  // sum over pass-span samples (for a weighted mean)
  std::uint64_t span_samples = 0;
};

RunResult run_cell(const CellSpec& c, std::uint64_t seed, bool telemetry_on,
                   sim::Nanos horizon) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(kCpus);
  o.seed = seed;
  o.smi_enabled = false;
  o.spec.smi.enabled = false;
  o.sched.admission_enabled = false;  // let the infeasible cell through
  o.telemetry.enabled = telemetry_on;
  o.telemetry.recorder.ring_capacity = kRingCapacity;
  if (telemetry_on) {
    // A permissive SLO keeps the monitor's hot path in the measurement
    // without alert/audit side effects dominating the infeasible cell.
    telemetry::SloSpec slo;
    slo.name = "sweep";
    slo.thread_match = "sweep";
    slo.miss_budget = 1.0;
    o.telemetry.slos.push_back(slo);
    o.telemetry.slo_audit = false;
  }
  System sys(std::move(o));
  sys.boot();
  const sim::Nanos slice = c.period * c.slice_pct / 100;
  for (std::uint32_t cpu = 0; cpu < kCpus; ++cpu) {
    auto b = std::make_unique<nk::FnBehavior>(
        [c, slice](nk::ThreadCtx&, std::uint64_t step) {
          if (step == 0) {
            return nk::Action::change_constraints(
                rt::Constraints::periodic(sim::millis(1), c.period, slice));
          }
          return nk::Action::compute(sim::millis(2));
        });
    sys.spawn("sweep" + std::to_string(cpu), std::move(b), cpu);
  }
  sys.run_for(horizon);

  RunResult r;
  for (const nk::Thread* t : sys.kernel().live_threads()) {
    r.arrivals += t->rt.arrivals;
    r.misses += t->rt.misses;
  }
  if (!telemetry_on) return r;

  const telemetry::FlightRecorder& rec = sys.telemetry().recorder();
  r.events_written = rec.written();
  r.events_dropped = rec.dropped();
  r.slo_alerts = sys.telemetry().slo().alerts();
  for (std::uint32_t cpu = 0; cpu < kCpus; ++cpu) {
    const telemetry::CpuMetrics& m = sys.telemetry().metrics().cpu(cpu);
    r.passes += m.passes;
    r.span_sum_ns += m.pass_span_ns.mean() * m.pass_span_ns.count();
    r.span_samples += m.pass_span_ns.count();
    if (m.admits_ok > 0) ++r.cpus_with_admit;
    // Counter-based, so ring wraparound cannot hide a captured kind.
    if (m.switches > 0) ++r.cpus_with_switch;
    if (m.misses > 0) ++r.cpus_with_miss;
  }
  return r;
}

// ---- Phase B: export round-trip vs the machine trace and replay oracle ----

struct ChromeResult {
  bool replay_ok = false;
  std::uint64_t replay_divergences = 0;
  bool parsed_ok = false;
  std::uint64_t events = 0;
  std::uint64_t switch_events = 0;
  std::uint64_t trace_switches = 0;
  bool switch_match = false;
  bool ring_export_ok = false;
  std::uint64_t ring_export_events = 0;
};

ChromeResult run_chrome(std::uint64_t seed, sim::Nanos horizon) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(2);
  o.seed = seed;
  o.smi_enabled = false;
  o.spec.smi.enabled = false;
  o.telemetry.enabled = true;
  o.telemetry.recorder.ring_capacity = kRingCapacity;
  System sys(std::move(o));
  sys.machine().trace().enable();
  sys.boot();
  rt::Constraints rc = rt::Constraints::periodic(
      sim::millis(1), sim::micros(100), sim::micros(20));
  auto b = std::make_unique<nk::FnBehavior>(
      [rc](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) return nk::Action::change_constraints(rc);
        return nk::Action::compute(sim::millis(2));
      });
  nk::Thread* t = sys.spawn("worker", std::move(b), 1);
  sys.run_for(horizon);

  ChromeResult r;
  const std::vector<audit::ReplayTask> tasks = {
      {t->id, t->constraints, t->rt.gamma}};
  const audit::ReplayConfig cfg =
      audit::replay_config_for(sys.machine().spec());
  const audit::ReplayResult rr = audit::replay_edf(
      sys.machine().trace(), 1, tasks, cfg, sys.engine().now());
  r.replay_ok = rr.ok();
  r.replay_divergences = rr.divergences.size();

  const auto records = telemetry::from_sim_trace(sys.machine().trace(), 1);
  std::ostringstream os;
  telemetry::write_chrome_trace(os, records);
  const telemetry::ParsedTrace parsed = telemetry::parse_chrome_trace(os.str());
  r.parsed_ok = parsed.ok;
  r.events = parsed.events.size();
  for (const telemetry::ParsedEvent& e : parsed.events) {
    if (e.phase == "i" && e.name == "switch") ++r.switch_events;
  }
  r.trace_switches =
      sys.machine().trace().filter(sim::TraceKind::kSwitch, 1).size();
  r.switch_match = r.switch_events == r.trace_switches && r.trace_switches > 0;

  // The recorder's own rings export through the same path (with run spans
  // and capacity counters attached).
  std::ostringstream os2;
  telemetry::write_chrome_trace(os2, sys.telemetry());
  const telemetry::ParsedTrace ring = telemetry::parse_chrome_trace(os2.str());
  r.ring_export_ok = ring.ok;
  r.ring_export_events = ring.events.size();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::parse_args(argc, argv);
  if (args.json.empty()) args.json = "BENCH_telemetry.json";

  bench::header(
      "ablate_telemetry_overhead: flight recorder + metrics + SLO observer",
      "telemetry on reproduces the off-schedule bit-identically (zero added "
      "misses) while capturing admission/switch/miss on every CPU; record "
      "cost amortizes to < 2% of the mean scheduler pass span; the Chrome "
      "export round-trips and matches the replay-oracle-validated trace");

  std::vector<CellSpec> cells = {
      {"feasible/1ms@30%", sim::millis(1), 30, true},
      {"tight/50us@90%", sim::micros(50), 90, false},
  };
  const std::uint64_t want_arrivals = args.full ? 2000 : 600;

  // 2 cells x {off, on}, every sim independent and seeded only by --seed.
  struct Job {
    std::size_t cell;
    bool on;
  };
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    jobs.push_back({i, false});
    jobs.push_back({i, true});
  }
  std::vector<RunResult> results(jobs.size());
  bench::Stopwatch wall;
  bench::parallel_for_index(jobs.size(), args.threads, [&](std::size_t i) {
    const CellSpec& c = cells[jobs[i].cell];
    sim::Nanos horizon =
        static_cast<sim::Nanos>(want_arrivals) * c.period;
    if (horizon > sim::millis(200)) horizon = sim::millis(200);
    if (horizon < sim::millis(30)) horizon = sim::millis(30);
    results[i] = run_cell(c, args.seed, jobs[i].on, horizon);
  });

  // Host-side record cost: batch calibration over the real push path.
  const double record_cost_ns = telemetry::FlightRecorder::
      measure_record_cost_ns(args.full ? (1u << 20) : (1u << 18));

  std::printf("%-18s %10s | %10s %10s %6s | %9s %8s %6s\n", "cell", "arrivals",
              "miss(off)", "miss(on)", "delta", "events", "dropped", "alerts");
  bool ab_identical = true;
  bool feasible_clean = true;
  bool infeasible_misses_everywhere = true;
  bool vocabulary_everywhere = true;
  double worst_overhead = 0.0;
  double worst_span_ns = 0.0;
  double worst_records_per_pass = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellSpec& c = cells[i];
    const RunResult& off = results[2 * i];
    const RunResult& on = results[2 * i + 1];
    const std::int64_t delta = static_cast<std::int64_t>(on.misses) -
                               static_cast<std::int64_t>(off.misses);
    ab_identical &= delta == 0 && on.arrivals == off.arrivals;
    if (c.feasible) feasible_clean &= on.misses == 0;
    if (!c.feasible) infeasible_misses_everywhere &= on.cpus_with_miss == kCpus;
    vocabulary_everywhere &=
        on.cpus_with_admit == kCpus && on.cpus_with_switch == kCpus;
    const double mean_span =
        on.span_samples > 0 ? on.span_sum_ns / on.span_samples : 0.0;
    const double records_per_pass =
        on.passes > 0 ? static_cast<double>(on.events_written) / on.passes
                      : 0.0;
    const double overhead =
        mean_span > 0 ? record_cost_ns * records_per_pass / mean_span : 1.0;
    if (overhead > worst_overhead) {
      worst_overhead = overhead;
      worst_span_ns = mean_span;
      worst_records_per_pass = records_per_pass;
    }
    std::printf("%-18s %10llu | %10llu %10llu %6lld | %9llu %8llu %6llu\n",
                c.label.c_str(), (unsigned long long)on.arrivals,
                (unsigned long long)off.misses, (unsigned long long)on.misses,
                (long long)delta, (unsigned long long)on.events_written,
                (unsigned long long)on.events_dropped,
                (unsigned long long)on.slo_alerts);
  }
  std::printf("\nrecord cost %.2f host-ns; worst cell: %.2f records/pass over "
              "%.0f ns mean pass span -> %.3f%% overhead\n\n",
              record_cost_ns, worst_records_per_pass, worst_span_ns,
              worst_overhead * 100.0);

  bench::shape_check(
      "telemetry on adds zero misses and changes no arrivals (same-seed A/B)",
      ab_identical);
  bench::shape_check("feasible cell runs miss-free with telemetry on",
                     feasible_clean);
  bench::shape_check("infeasible cell misses on every CPU (fig06 shape)",
                     infeasible_misses_everywhere);
  bench::shape_check("admission + switch events captured on all 4 CPUs",
                     vocabulary_everywhere);
  bench::shape_check("record cost amortizes to < 2% of mean pass span",
                     worst_overhead < 0.02);

  // ---- Phase B ----
  const ChromeResult ch =
      run_chrome(args.seed, args.full ? sim::millis(100) : sim::millis(30));
  std::printf("\nchrome: %llu events (%llu switch vs %llu in trace), replay "
              "divergences %llu, ring export %llu events\n",
              (unsigned long long)ch.events,
              (unsigned long long)ch.switch_events,
              (unsigned long long)ch.trace_switches,
              (unsigned long long)ch.replay_divergences,
              (unsigned long long)ch.ring_export_events);
  bench::shape_check("exported trace parses and matches the machine trace's "
                     "switch stream",
                     ch.parsed_ok && ch.switch_match && ch.ring_export_ok &&
                         ch.ring_export_events > 0);
  bench::shape_check("machine trace validates against the EDF replay oracle",
                     ch.replay_ok && ch.replay_divergences == 0);

  std::printf("total wall %.2fs\n", wall.seconds());

  // ---- JSON record (schema: docs/PERFORMANCE.md) ----
  bench::JsonObject j;
  j.field("benchmark", std::string("ablate_telemetry_overhead"));
  j.field("mode", std::string(args.full ? "full" : "quick"));
  j.field("seed", static_cast<std::uint64_t>(args.seed));
  j.field("record_cost_ns", record_cost_ns);
  j.field("ring_capacity", static_cast<std::uint64_t>(kRingCapacity));
  {
    std::string arr = "[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellSpec& c = cells[i];
      const RunResult& off = results[2 * i];
      const RunResult& on = results[2 * i + 1];
      bench::JsonObject cj;
      cj.field("label", c.label);
      cj.field("period_ns", static_cast<std::uint64_t>(c.period));
      cj.field("slice_pct", static_cast<std::uint64_t>(c.slice_pct));
      cj.field("arrivals", on.arrivals);
      cj.field("misses_off", off.misses);
      cj.field("misses_on", on.misses);
      cj.field("delta_misses", static_cast<double>(on.misses) -
                                   static_cast<double>(off.misses));
      cj.field("events_captured", on.events_written);
      cj.field("events_dropped", on.events_dropped);
      cj.field("slo_alerts", on.slo_alerts);
      cj.field("cpus_with_admit", static_cast<std::uint64_t>(on.cpus_with_admit));
      cj.field("cpus_with_switch",
               static_cast<std::uint64_t>(on.cpus_with_switch));
      cj.field("cpus_with_miss", static_cast<std::uint64_t>(on.cpus_with_miss));
      if (i > 0) arr += ", ";
      arr += cj.str();
    }
    arr += "]";
    j.raw("cells", arr);
  }
  j.field("mean_pass_span_ns", worst_span_ns);
  j.field("records_per_pass", worst_records_per_pass);
  j.field("overhead_fraction", worst_overhead);
  {
    bench::JsonObject cj;
    cj.field("parsed", std::string(ch.parsed_ok ? "yes" : "no"));
    cj.field("events", ch.events);
    cj.field("switch_events", ch.switch_events);
    cj.field("switch_match", std::string(ch.switch_match ? "yes" : "no"));
    cj.field("replay_divergences", ch.replay_divergences);
    cj.field("ring_export_events", ch.ring_export_events);
    j.raw("chrome", cj.str());
  }
  if (!j.write_file(args.json)) {
    std::fprintf(stderr, "warning: cannot write %s\n", args.json.c_str());
    return 1;
  }
  std::printf("wrote %s\n", args.json.c_str());
  return 0;
}
