// Figure 4: hard real-time scheduling verified by "external scope".
//
// A periodic thread with tau = 100 us, sigma = 50 us runs under the
// scheduler; the scheduler toggles GPIO pins (thread active, scheduler pass,
// interrupt handler), and the ScopeAnalyzer recovers what the oscilloscope
// showed: the interrupt/scheduler traces are fuzzy (their path lengths
// jitter) while the test thread's trace stays sharp — the scheduler absorbs
// its own variance to keep the thread's timing deterministic.
#include <fstream>

#include "common.hpp"
#include "sim/scope.hpp"
#include "sim/trace_export.hpp"

int main(int argc, char** argv) {
  using namespace hrt;
  const bench::Args args = bench::parse_args(argc, argv);

  bench::header(
      "Figure 4: periodic thread (tau=100us sigma=50us) on the external scope",
      "interrupt + scheduler traces show fuzz; the test thread trace is sharp");

  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  o.seed = args.seed;
  System sys(std::move(o));
  sys.boot();
  sys.machine().trace().enable();

  auto behavior = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::millis(1), sim::micros(100), sim::micros(50)));
        }
        return nk::Action::compute(sim::micros(25));
      });
  nk::Thread* t = sys.spawn("test", std::move(behavior), 1);
  sys.kernel().set_scope(nk::Kernel::ScopeConfig{
      .enabled = true, .cpu = 1, .watch_thread = t});

  const sim::Nanos horizon = args.full ? sim::millis(2000) : sim::millis(200);
  sys.run_for(horizon);

  // Reconstruct the three scope channels from the pin trace.
  sim::ScopeAnalyzer chan[3];  // 0 thread, 1 scheduler pass, 2 irq handler
  for (const auto& r : sys.machine().trace().filter(sim::TraceKind::kPin, 1)) {
    const int pin = static_cast<int>(r.value >> 1);
    const bool level = (r.value & 1) != 0;
    if (pin >= 0 && pin < 3) chan[pin].transition(r.time, level);
  }

  const auto& spec = sys.machine().spec();
  const char* names[3] = {"test thread ", "sched pass  ", "irq handler "};
  std::printf("\n%-14s %10s %12s %12s %10s %9s\n", "channel", "pulses",
              "width avg", "width std", "period", "duty");
  double rel_fuzz[3];
  for (int i = 0; i < 3; ++i) {
    auto w = chan[i].pulse_width_stats();
    auto p = chan[i].period_stats();
    rel_fuzz[i] = w.mean() > 0 ? w.stddev() / w.mean() : 0.0;
    std::printf("%-14s %10llu %9.0f cy %9.0f cy %7.1f us %8.1f%%\n", names[i],
                (unsigned long long)w.count(),
                bench::to_cycles(spec, (sim::Nanos)w.mean()),
                bench::to_cycles(spec, (sim::Nanos)w.stddev()),
                p.mean() / 1000.0, chan[i].duty_cycle() * 100.0);
  }

  std::printf("\nthread arrivals=%llu misses=%llu\n",
              (unsigned long long)t->rt.arrivals,
              (unsigned long long)t->rt.misses);

  // Save the capture: the VCD opens in GTKWave (pin0 = test thread,
  // pin1 = scheduler pass, pin2 = interrupt handler).
  {
    std::ofstream vcd("fig04_scope.vcd");
    sim::export_pins_vcd(sys.machine().trace(), 1, vcd);
    std::printf("scope capture written to fig04_scope.vcd\n");
  }

  auto period = chan[0].period_stats();
  bench::shape_check("thread period locked to 100 us",
                     period.mean() > 99'000 && period.mean() < 101'000);
  bench::shape_check(
      "thread duty ~50% (slightly above: active mark includes sched time)",
      chan[0].duty_cycle() > 0.49 && chan[0].duty_cycle() < 0.58);
  bench::shape_check(
      "scheduler/irq fuzz exceeds thread-trace fuzz",
      rel_fuzz[1] > 2.0 * rel_fuzz[0] && rel_fuzz[2] > 2.0 * rel_fuzz[0]);
  bench::shape_check("zero deadline misses for a feasible constraint",
                     t->rt.misses == 0);
  return 0;
}
