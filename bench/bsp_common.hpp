// Shared BSP setup for Figures 13-16.
//
// Two granularity presets, chosen so the cost ratio between one iteration's
// work and the 255-way barrier matches the paper's regimes:
//   * coarsest: per-iteration work >> barrier cost, so barrier removal buys
//     little (Figure 15) and resource control is clean (Figure 13).
//   * finest: barrier cost is comparable to (or above) an iteration's work,
//     so Amdahl's law makes barrier removal pay 20%-300% (Figure 16) and
//     throttling shows more spread (Figure 14).
#pragma once

#include <vector>

#include "bsp/bsp.hpp"
#include "common.hpp"

namespace bench {

inline hrt::bsp::BspConfig coarse_cfg(std::uint32_t p, bool full) {
  hrt::bsp::BspConfig c;
  c.P = p;
  c.NE = 4096;
  c.NC = 8;
  c.NW = 16;
  c.N = full ? 60 : 16;
  return c;  // per-iteration compute ~150 us @1.3 GHz
}

inline hrt::bsp::BspConfig fine_cfg(std::uint32_t p, bool full) {
  hrt::bsp::BspConfig c;
  c.P = p;
  c.NE = 512;
  c.NC = 8;
  c.NW = 16;
  c.N = full ? 400 : 120;
  return c;  // per-iteration compute ~19 us @1.3 GHz
}

struct BspPoint {
  hrt::sim::Nanos period;
  int slice_pct;
  double util;
  hrt::sim::Nanos time;  // makespan
  bool ok;
};

inline BspPoint run_rt_point(const hrt::bsp::BspConfig& base,
                             hrt::sim::Nanos period, int slice_pct,
                             std::uint64_t seed, bool barrier) {
  using namespace hrt;
  System::Options o;
  o.spec = hw::MachineSpec::phi();
  o.seed = seed;
  // The paper's sweep reaches 90% utilization; shrink the reservations so
  // the admission test has that much to give (the BSP node runs nothing
  // else).
  o.sched.sporadic_reservation = 0.04;
  o.sched.aperiodic_reservation = 0.05;
  System sys(std::move(o));
  sys.boot();

  bsp::BspConfig cfg = base;
  cfg.mode = bsp::Mode::kGroupRt;
  cfg.barrier = barrier;
  cfg.period = period;
  cfg.slice = period * slice_pct / 100;
  // Group admission for P threads takes ~P * collective costs; leave room.
  cfg.phase = sim::millis(3) + cfg.P * sim::micros(80);
  auto res = bsp::run_bsp(sys, cfg);

  BspPoint pt{};
  pt.period = period;
  pt.slice_pct = slice_pct;
  pt.util = static_cast<double>(slice_pct) / 100.0;
  pt.time = res.makespan;
  pt.ok = res.all_done && res.admission_ok;
  return pt;
}

inline BspPoint run_aperiodic_point(const hrt::bsp::BspConfig& base,
                                    std::uint64_t seed, bool barrier) {
  using namespace hrt;
  System::Options o;
  o.spec = hw::MachineSpec::phi();
  o.seed = seed;
  System sys(std::move(o));
  sys.boot();

  bsp::BspConfig cfg = base;
  cfg.mode = bsp::Mode::kAperiodic;
  cfg.barrier = barrier;
  auto res = bsp::run_bsp(sys, cfg);
  BspPoint pt{};
  pt.util = 1.0;
  pt.time = res.makespan;
  pt.ok = res.all_done;
  return pt;
}

inline std::vector<hrt::sim::Nanos> throttle_periods(bool full) {
  using hrt::sim::micros;
  if (full) {
    std::vector<hrt::sim::Nanos> ps;
    for (int i = 0; i < 100; ++i) {
      ps.push_back(micros(200) + i * micros(48));  // 200us .. ~5ms
    }
    return ps;
  }
  return {micros(250), micros(500), micros(1000), micros(2000), micros(4000)};
}

/// One (period, slice%) cell of a Figure 13-16 sweep.
struct BspJob {
  hrt::sim::Nanos period;
  int pct;
};

inline std::vector<BspJob> sweep_jobs(
    const std::vector<hrt::sim::Nanos>& periods, int pct_lo, int pct_hi,
    int pct_step) {
  std::vector<BspJob> jobs;
  for (hrt::sim::Nanos period : periods) {
    for (int pct = pct_lo; pct <= pct_hi; pct += pct_step) {
      jobs.push_back({period, pct});
    }
  }
  return jobs;
}

/// Run every sweep cell through the shared --threads-controlled worker-pool
/// helper (bench::parallel_for_index, backed by sim::WorkerPool).  Each cell
/// is an independent simulation with its own seed-derived System, and
/// results land in job order, so output is identical to a serial sweep.
inline std::vector<BspPoint> run_rt_sweep(const hrt::bsp::BspConfig& base,
                                          const std::vector<BspJob>& jobs,
                                          std::uint64_t seed, bool barrier,
                                          unsigned threads) {
  std::vector<BspPoint> out(jobs.size());
  parallel_for_index(jobs.size(), threads, [&](std::size_t i) {
    out[i] = run_rt_point(base, jobs[i].period, jobs[i].pct, seed, barrier);
  });
  return out;
}

}  // namespace bench
