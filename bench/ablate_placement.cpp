// Placement ablation: pure partitioning policies (FFD/BFD/WFD/topology)
// versus semi-partitioned overflow splitting (src/global/placement.hpp).
//
// Phase A sweeps random heavy task sets (UUniFast, n tasks whose individual
// utilizations routinely exceed one CPU's capacity) over target utilizations
// and seeds, packing each set with every pure policy and with the
// semi-partitioned packer.  The fit test inside the packers is the real
// rt::edf_admissible, so a reported packing is exactly what per-CPU
// admission would accept.  Shape checks: every pure packing passes per-CPU
// admission when re-validated here; semi-partitioned admits >= the best
// pure policy in every cell and strictly more in at least one.
//
// Phase B executes sampled packings on a simulated 8-CPU r415: every placed
// task (or pipeline chunk) is spawned pinned to its assigned CPU with its
// packed constraints, and the run must show zero deadline misses.  One cell
// is additionally cross-checked with the offline EDF replay oracle
// (src/audit/replay.hpp) on all eight CPUs.
//
// Output: human-readable tables plus a JSON record (--json=PATH, default
// BENCH_placement.json); see docs/PERFORMANCE.md for the schema.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "audit/replay.hpp"
#include "common.hpp"
#include "global/placement.hpp"
#include "rt/system.hpp"
#include "rt/taskset_gen.hpp"

namespace {

using namespace hrt;

constexpr std::uint32_t kNumCpus = 8;
constexpr std::uint32_t kLadenCpus = 1;
constexpr double kEps = 1e-9;

// Per-CPU capacity available to periodic admission under the default
// System options (utilization_limit - sporadic - aperiodic reservations).
// Phase B runs with those defaults, so the packers must plan against the
// same number or the execution would diverge from the plan.
double periodic_capacity(const System::Options& o) {
  return o.sched.utilization_limit - o.sched.sporadic_reservation -
         o.sched.aperiodic_reservation;
}

const global::Policy kPurePolicies[] = {
    global::Policy::kFirstFit,
    global::Policy::kBestFit,
    global::Policy::kWorstFit,
    global::Policy::kTopology,
};
constexpr std::size_t kNumPure = 4;

struct Cell {
  double u_target = 0;
  std::uint64_t seed = 0;
  std::vector<rt::PeriodicTask> tasks;
  global::PackResult pure[kNumPure];
  global::SemiPartitionedResult semi;
};

std::vector<rt::PeriodicTask> heavy_taskset(double u_target,
                                            std::uint64_t seed) {
  rt::TaskSetParams p;
  p.n = 9;
  p.total_utilization = u_target;
  p.min_period = sim::micros(500);
  p.max_period = sim::millis(4);
  p.period_granule = sim::micros(100);
  p.min_slice = sim::micros(10);
  sim::Rng rng(seed);
  std::vector<rt::PeriodicTask> tasks = rt::generate_taskset(p, rng);
  // A common spawn phase so Phase B admissions are aligned with the plan;
  // split chunks derive their pipeline offsets from this base.
  for (rt::PeriodicTask& t : tasks) t.phase = sim::millis(1);
  return tasks;
}

/// Re-derive each CPU's set from the assignment and re-run admission: a
/// packer bug that over-commits a CPU fails here, not in Phase B.
bool revalidate_pure(const Cell& cell, const global::PackResult& r,
                     double capacity) {
  std::vector<std::vector<rt::PeriodicTask>> sets(kNumCpus);
  for (std::size_t i = 0; i < cell.tasks.size(); ++i) {
    if (r.assignment[i] == global::kInvalidCpu) continue;
    sets[r.assignment[i]].push_back(cell.tasks[i]);
  }
  for (std::uint32_t c = 0; c < kNumCpus; ++c) {
    if (!rt::edf_admissible(sets[c], capacity)) return false;
    if (r.per_cpu[c] > capacity + kEps) return false;
  }
  return true;
}

bool revalidate_semi(const Cell& cell, double capacity) {
  std::vector<std::vector<rt::PeriodicTask>> sets(kNumCpus);
  const global::PackResult& base = cell.semi.base;
  for (std::size_t i = 0; i < cell.tasks.size(); ++i) {
    if (base.assignment[i] == global::kInvalidCpu) continue;
    sets[base.assignment[i]].push_back(cell.tasks[i]);
  }
  for (const auto& s : cell.semi.splits) {
    for (const global::SplitChunk& ch : s.plan.chunks) {
      sets[ch.cpu].push_back(rt::PeriodicTask{
          ch.constraints.period, ch.constraints.slice, ch.constraints.phase});
    }
  }
  for (std::uint32_t c = 0; c < kNumCpus; ++c) {
    if (!rt::edf_admissible(sets[c], capacity)) return false;
    if (cell.semi.per_cpu[c] > capacity + kEps) return false;
  }
  return true;
}

double best_pure_util(const Cell& cell) {
  double best = 0;
  for (const global::PackResult& r : cell.pure) {
    best = std::max(best, r.admitted_util);
  }
  return best;
}

// ---- Phase B: execute a packing on the simulator ----

struct SpawnSpec {
  std::uint32_t cpu = 0;
  rt::Constraints c;
};

std::vector<SpawnSpec> pure_spawns(const Cell& cell,
                                   const global::PackResult& r) {
  std::vector<SpawnSpec> out;
  for (std::size_t i = 0; i < cell.tasks.size(); ++i) {
    if (r.assignment[i] == global::kInvalidCpu) continue;
    const rt::PeriodicTask& t = cell.tasks[i];
    out.push_back(SpawnSpec{
        r.assignment[i], rt::Constraints::periodic(t.phase, t.period,
                                                   t.slice)});
  }
  return out;
}

std::vector<SpawnSpec> semi_spawns(const Cell& cell) {
  std::vector<SpawnSpec> out = pure_spawns(cell, cell.semi.base);
  for (const auto& s : cell.semi.splits) {
    for (const global::SplitChunk& ch : s.plan.chunks) {
      out.push_back(SpawnSpec{ch.cpu, ch.constraints});
    }
  }
  return out;
}

std::unique_ptr<nk::Behavior> rt_worker(const rt::Constraints& c) {
  return std::make_unique<nk::FnBehavior>(
      [c](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) return nk::Action::change_constraints(c);
        // Chunks larger than any slice; budget enforcement does the slicing.
        return nk::Action::compute(sim::millis(2));
      });
}

struct ExecResult {
  std::string label;
  std::uint32_t threads = 0;
  std::uint32_t admitted = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t misses = 0;
  std::uint64_t audit_violations = 0;
  bool replayed = false;
  std::uint64_t replay_divergences = 0;
};

ExecResult run_cell(const std::string& label,
                    const std::vector<SpawnSpec>& specs, std::uint64_t seed,
                    sim::Nanos horizon, bool replay) {
  System::Options o;
  o.spec = hw::MachineSpec::r415();
  o.spec.num_cpus = kNumCpus;
  o.seed = seed;
  // The zero-miss claim is about placement, not SMI missing-time; the SMI
  // ablations cover that axis separately.
  o.smi_enabled = false;
  o.interrupt_laden_cpus = kLadenCpus;
  o.audit.enabled = true;  // accumulate-mode invariant audits every pass
  System sys(std::move(o));
  if (replay) sys.machine().trace().enable();
  sys.boot();

  std::vector<nk::Thread*> threads;
  threads.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    threads.push_back(sys.spawn("p" + std::to_string(i),
                                rt_worker(specs[i].c), specs[i].cpu));
  }
  sys.run_for(horizon);

  ExecResult r;
  r.label = label;
  r.threads = static_cast<std::uint32_t>(threads.size());
  for (nk::Thread* t : threads) {
    if (t->is_realtime()) ++r.admitted;
    r.arrivals += t->rt.arrivals;
    r.misses += t->rt.misses;
  }
  r.audit_violations = sys.auditor().total_violations();

  if (replay) {
    const audit::ReplayConfig cfg =
        audit::replay_config_for(sys.machine().spec());
    r.replayed = true;
    for (std::uint32_t c = 0; c < kNumCpus; ++c) {
      std::vector<audit::ReplayTask> tasks;
      std::vector<nk::Thread*> on_cpu;
      for (nk::Thread* t : threads) {
        if (t->cpu != c || !t->is_realtime()) continue;
        tasks.push_back(audit::ReplayTask{t->id, t->constraints, t->rt.gamma});
        on_cpu.push_back(t);
      }
      if (tasks.empty()) continue;
      audit::ReplayResult rr = audit::replay_edf(sys.machine().trace(), c,
                                                 tasks, cfg, sys.engine().now());
      for (nk::Thread* t : on_cpu) {
        const std::uint64_t tol =
            std::max<std::uint64_t>(3, t->rt.arrivals / 50);
        audit::verify_stats(rr, t->id, t->rt.arrivals, t->rt.completions,
                            t->rt.misses, tol);
      }
      for (const audit::Divergence& d : rr.divergences) {
        std::fprintf(stderr, "[replay %s cpu%u] t=%lld: %s\n", label.c_str(),
                     c, (long long)d.time, d.detail.c_str());
      }
      r.replay_divergences += rr.divergences.size();
    }
  }
  return r;
}

std::string exec_json(const ExecResult& r) {
  bench::JsonObject j;
  j.field("label", r.label);
  j.field("threads", static_cast<std::uint64_t>(r.threads));
  j.field("admitted", static_cast<std::uint64_t>(r.admitted));
  j.field("arrivals", r.arrivals);
  j.field("misses", r.misses);
  j.field("audit_violations", r.audit_violations);
  j.field("replayed", std::string(r.replayed ? "yes" : "no"));
  j.field("replay_divergences", r.replay_divergences);
  return j.str();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::parse_args(argc, argv);
  if (args.json.empty()) args.json = "BENCH_placement.json";

  const System::Options defaults;
  const double capacity = periodic_capacity(defaults);
  const std::uint64_t num_seeds = args.full ? 8 : 4;
  const double u_targets[] = {4.5, 5.5, 6.5};
  const sim::Nanos horizon = args.full ? sim::millis(500) : sim::millis(150);

  bench::header(
      "ablate_placement: pure partitioning vs semi-partitioned overflow",
      "semi admits >= best pure everywhere, strictly more somewhere; "
      "admitted sets run with zero misses");
  std::printf("8-CPU r415, capacity %.2f/CPU (%.2f total), n=9 heavy tasks, "
              "%llu seeds\n\n",
              capacity, capacity * kNumCpus, (unsigned long long)num_seeds);

  // ---- Phase A: static packing sweep (sharded across host cores) ----
  std::vector<Cell> cells;
  for (const double u : u_targets) {
    for (std::uint64_t s = 1; s <= num_seeds; ++s) {
      Cell c;
      c.u_target = u;
      c.seed = args.seed * 1000 + s;
      cells.push_back(std::move(c));
    }
  }
  bench::Stopwatch wall;
  bench::parallel_for_index(cells.size(), args.threads, [&](std::size_t i) {
    Cell& c = cells[i];
    c.tasks = heavy_taskset(c.u_target, c.seed);
    for (std::size_t p = 0; p < kNumPure; ++p) {
      c.pure[p] = global::pack_decreasing(c.tasks, kNumCpus, capacity,
                                          kPurePolicies[p], kLadenCpus);
    }
    c.semi = global::pack_semi_partitioned(c.tasks, kNumCpus, capacity,
                                           sim::micros(10), 8);
  });

  bool all_pure_valid = true;
  bool all_semi_valid = true;
  bool semi_ge_everywhere = true;
  std::uint32_t semi_strict_wins = 0;
  std::printf("%-6s %-6s %-7s", "U", "seed", "setU");
  for (std::size_t p = 0; p < kNumPure; ++p) {
    std::printf(" %10s", global::policy_name(kPurePolicies[p]));
  }
  std::printf(" %10s %s\n", "semi", "splits");
  for (const Cell& c : cells) {
    for (std::size_t p = 0; p < kNumPure; ++p) {
      all_pure_valid &= revalidate_pure(c, c.pure[p], capacity);
    }
    all_semi_valid &= revalidate_semi(c, capacity);
    const double best = best_pure_util(c);
    semi_ge_everywhere &= c.semi.admitted_util >= best - kEps;
    if (c.semi.admitted_util > best + 1e-6) ++semi_strict_wins;
    std::printf("%-6.2f %-6llu %-7.3f", c.u_target,
                (unsigned long long)c.seed,
                rt::total_utilization(c.tasks));
    for (std::size_t p = 0; p < kNumPure; ++p) {
      std::printf(" %10.3f", c.pure[p].admitted_util);
    }
    std::printf(" %10.3f %6zu\n", c.semi.admitted_util,
                c.semi.splits.size());
  }
  std::printf("\nsemi strictly beats every pure policy in %u/%zu cells\n\n",
              semi_strict_wins, cells.size());

  bench::shape_check("every pure packing passes per-CPU admission",
                     all_pure_valid);
  bench::shape_check("semi-partitioned packing passes per-CPU admission",
                     all_semi_valid);
  bench::shape_check("semi admits >= best pure policy in every cell",
                     semi_ge_everywhere);
  bench::shape_check("semi admits strictly more in at least one cell",
                     semi_strict_wins > 0);

  // ---- Phase B: execute sampled packings, assert zero misses ----
  // Sample: the first cell per U-target whose semi packing actually split
  // something (those exercise the pipeline chunks end to end).  Each sample
  // also runs the best pure policy's packing as a control.
  struct ExecJob {
    std::string label;
    std::vector<SpawnSpec> specs;
    std::uint64_t seed = 0;
    bool replay = false;
  };
  std::vector<ExecJob> jobs;
  for (const double u : u_targets) {
    const Cell* pick = nullptr;
    for (const Cell& c : cells) {
      if (c.u_target == u && !c.semi.splits.empty()) {
        pick = &c;
        break;
      }
    }
    if (pick == nullptr) continue;
    std::size_t best_p = 0;
    for (std::size_t p = 1; p < kNumPure; ++p) {
      if (pick->pure[p].admitted_util >
          pick->pure[best_p].admitted_util) {
        best_p = p;
      }
    }
    char tag[64];
    std::snprintf(tag, sizeof(tag), "U%.1f/s%llu", u,
                  (unsigned long long)pick->seed);
    // Replay-oracle the lowest-U sample: its trace is the most readable and
    // the oracle's cost grows with context-switch density.
    const bool replay = jobs.empty();
    jobs.push_back(ExecJob{std::string(tag) + "/semi", semi_spawns(*pick),
                           pick->seed, replay});
    jobs.push_back(ExecJob{
        std::string(tag) + "/" +
            global::policy_name(kPurePolicies[best_p]),
        pure_spawns(*pick, pick->pure[best_p]), pick->seed, false});
  }

  std::vector<ExecResult> execs(jobs.size());
  bench::parallel_for_index(jobs.size(), args.threads, [&](std::size_t i) {
    execs[i] = run_cell(jobs[i].label, jobs[i].specs, jobs[i].seed, horizon,
                        jobs[i].replay);
  });

  bool all_admitted = true;
  bool zero_misses = true;
  bool zero_divergences = true;
  bool any_replayed = false;
  std::uint64_t audit_violations = 0;
  std::printf("%-18s %8s %9s %9s %7s %7s\n", "execution", "threads",
              "admitted", "arrivals", "misses", "replay");
  for (const ExecResult& r : execs) {
    all_admitted &= r.admitted == r.threads;
    zero_misses &= r.misses == 0;
    zero_divergences &= r.replay_divergences == 0;
    any_replayed |= r.replayed;
    audit_violations += r.audit_violations;
    std::printf("%-18s %8u %9u %9llu %7llu %7s\n", r.label.c_str(),
                r.threads, r.admitted, (unsigned long long)r.arrivals,
                (unsigned long long)r.misses,
                r.replayed ? (r.replay_divergences == 0 ? "clean" : "DIVERGE")
                           : "-");
  }
  std::printf("\n");

  bench::shape_check("sampled packings exercise pipeline splits",
                     !jobs.empty());
  bench::shape_check("every planned task admitted at spawn", all_admitted);
  bench::shape_check("zero deadline misses across all executions",
                     zero_misses);
  bench::shape_check("EDF replay oracle ran and found no divergences",
                     any_replayed && zero_divergences);
  bench::shape_check("zero invariant-audit violations",
                     audit_violations == 0);

  std::printf("total wall %.2fs\n", wall.seconds());

  // ---- JSON record (schema: docs/PERFORMANCE.md) ----
  bench::JsonObject j;
  j.field("benchmark", std::string("ablate_placement"));
  j.field("mode", std::string(args.full ? "full" : "quick"));
  j.field("seed", static_cast<std::uint64_t>(args.seed));
  j.field("num_cpus", static_cast<std::uint64_t>(kNumCpus));
  j.field("capacity_per_cpu", capacity);
  j.field("semi_strict_wins", static_cast<std::uint64_t>(semi_strict_wins));
  j.field("cells_total", static_cast<std::uint64_t>(cells.size()));
  {
    std::string arr = "[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      bench::JsonObject cj;
      cj.field("u_target", c.u_target);
      cj.field("seed", static_cast<std::uint64_t>(c.seed));
      cj.field("set_util", rt::total_utilization(c.tasks));
      for (std::size_t p = 0; p < kNumPure; ++p) {
        cj.field(std::string(global::policy_name(kPurePolicies[p])) +
                     "_util",
                 c.pure[p].admitted_util);
      }
      cj.field("semi_util", c.semi.admitted_util);
      cj.field("semi_splits", static_cast<std::uint64_t>(c.semi.splits.size()));
      if (i > 0) arr += ", ";
      arr += cj.str();
    }
    arr += "]";
    j.raw("cells", arr);
  }
  {
    std::string arr = "[";
    for (std::size_t i = 0; i < execs.size(); ++i) {
      if (i > 0) arr += ", ";
      arr += exec_json(execs[i]);
    }
    arr += "]";
    j.raw("executions", arr);
  }
  if (!j.write_file(args.json)) {
    std::fprintf(stderr, "warning: cannot write %s\n", args.json.c_str());
    return 1;
  }
  std::printf("wrote %s\n", args.json.c_str());
  return 0;
}
