// Ablation (section 3.3): APIC tick countdown vs TSC-deadline mode.
//
// "At boot time, the APIC timer resolution, the cycle counter resolution,
// and the desired nanosecond granularity are calibrated so that the actual
// countdown programmed into the APIC timer will be conservative ... If the
// APIC supports 'TSC deadline mode' ... it can be programmed with a cycle
// count instead of an APIC tick count, avoiding issues of resolution
// conversion."  TSC-deadline mode shrinks the quantization earliness from
// up to one APIC tick to under one cycle.
#include "common.hpp"

using namespace hrt;

namespace {

struct TimerStats {
  double avg_earliness_ns;
  double max_earliness_ns;
  std::uint64_t misses;
};

TimerStats run_mode(bool tsc_deadline, std::uint64_t seed) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  o.spec.timer.tsc_deadline = tsc_deadline;
  o.seed = seed;
  System sys(std::move(o));
  sys.boot();

  auto behavior = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::millis(1), sim::micros(50), sim::micros(20)));
        }
        return nk::Action::compute(sim::micros(10));
      });
  nk::Thread* t = sys.spawn("rt", std::move(behavior), 1);
  sys.run_for(sim::millis(200));

  const auto& e = sys.machine().cpu(1).apic().earliness();
  return TimerStats{e.mean(), e.max(), t->rt.misses};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header(
      "Ablation: APIC one-shot tick mode vs TSC-deadline mode "
      "(tau=50us sigma=20us periodic thread)",
      "conservative rounding fires early, never late; TSC-deadline mode "
      "eliminates nearly all of the quantization");

  auto tick = run_mode(false, args.seed);
  auto tsc = run_mode(true, args.seed);
  std::printf("\n%-16s %16s %16s %10s\n", "mode", "avg early (ns)",
              "max early (ns)", "misses");
  std::printf("%-16s %16.2f %16.2f %10llu\n", "APIC ticks", tick.avg_earliness_ns,
              tick.max_earliness_ns, (unsigned long long)tick.misses);
  std::printf("%-16s %16.2f %16.2f %10llu\n", "TSC deadline", tsc.avg_earliness_ns,
              tsc.max_earliness_ns, (unsigned long long)tsc.misses);

  bench::shape_check("tick mode earliness bounded by one tick (20 ns)",
                     tick.max_earliness_ns <= 20.0);
  bench::shape_check("TSC-deadline earliness a few ns at most (cycle-level)",
                     tsc.max_earliness_ns < 3.0 &&
                         tsc.max_earliness_ns < 0.2 * tick.max_earliness_ns);
  bench::shape_check("never late: zero misses in both modes",
                     tick.misses == 0 && tsc.misses == 0);
  return 0;
}
