// Ablation (section 3.6): the utilization limit as a knob trading CPU
// utilization against sensitivity to SMIs.
//
// "The utilization limit then acts as a knob, letting us trade off between
// sensitivity to SMIs/badly predicted interrupts, and utilization of the
// CPU."  A workload admitted right up to the limit leaves (1 - limit) of
// headroom per period; SMI missing time larger than that headroom causes
// misses.
#include "common.hpp"

using namespace hrt;

namespace {

double miss_rate_at_limit(double limit, std::uint64_t seed) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  o.spec.smi.enabled = true;
  o.spec.smi.mean_interval_ns = sim::micros(600);
  o.spec.smi.min_duration_ns = sim::micros(8);
  o.spec.smi.mean_duration_ns = sim::micros(12);
  o.spec.smi.max_duration_ns = sim::micros(18);
  o.seed = seed;
  o.sched.utilization_limit = limit;
  o.sched.sporadic_reservation = 0.0;
  o.sched.aperiodic_reservation = 0.0;
  System sys(std::move(o));
  sys.boot();

  // Demand the full available utilization at a 200 us period.
  const sim::Nanos period = sim::micros(200);
  const auto slice = static_cast<sim::Nanos>(
      static_cast<double>(period) * limit);
  auto behavior = std::make_unique<nk::FnBehavior>(
      [period, slice](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(
              rt::Constraints::periodic(sim::millis(1), period, slice));
        }
        return nk::Action::compute(sim::micros(40));
      });
  nk::Thread* t = sys.spawn("rt", std::move(behavior), 1);
  sys.run_for(sim::millis(400));
  if (!t->last_admit_ok) return -1.0;
  return t->rt.arrivals > 0 ? static_cast<double>(t->rt.misses) /
                                  static_cast<double>(t->rt.arrivals)
                            : 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header(
      "Ablation: utilization limit vs SMI sensitivity (tau=200us, sigma = "
      "limit*tau, SMIs ~12us every ~600us)",
      "higher limits squeeze out the headroom that absorbs missing time");

  std::printf("\n%12s %12s %14s\n", "util limit", "headroom/us",
              "miss rate %");
  double at_low = -1.0;
  double at_high = -1.0;
  for (double limit : {0.70, 0.80, 0.90, 0.95, 0.97, 0.99}) {
    const double rate = miss_rate_at_limit(limit, args.seed);
    std::printf("%12.2f %12.1f %14.2f\n", limit, (1.0 - limit) * 200.0,
                rate * 100.0);
    if (limit == 0.80) at_low = rate;
    if (limit == 0.99) at_high = rate;
  }

  bench::shape_check("modest limits absorb the storm (miss ~0% at 0.80)",
                     at_low >= 0.0 && at_low < 0.01);
  bench::shape_check("maxed-out limit is SMI-sensitive (misses at 0.99)",
                     at_high > 0.01);
  return 0;
}
