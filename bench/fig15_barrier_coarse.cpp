// Figure 15: benefit of barrier removal at the coarsest granularity.
//
// "All points above the line (almost all of them) represent configurations
// where the benchmark is running faster without the barrier. ... With a 90%
// slice (utilization), the hard real-time scheduled benchmark, with
// barriers removed, matches and sometimes slightly exceeds the performance
// of the non-real-time scheduled benchmark [with barriers, at 100%
// utilization]."  At coarse granularity Amdahl's law limits the gain.
#include "bsp_common.hpp"

int main(int argc, char** argv) {
  using namespace hrt;
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header(
      "Figure 15: barrier removal, coarsest granularity (time with barrier "
      "vs time without, hard real-time group schedule)",
      "without-barrier wins modestly; RT@90% w/o barriers ~= aperiodic@100% "
      "with barriers");

  const std::uint32_t p = args.full ? 255 : 64;
  const auto base = bench::coarse_cfg(p, args.full);
  const auto periods = bench::throttle_periods(args.full);

  const auto jobs = bench::sweep_jobs(periods, 30, 90, args.full ? 10 : 30);
  const auto with_pts =
      bench::run_rt_sweep(base, jobs, args.seed, /*barrier=*/true,
                          args.threads);
  const auto without_pts =
      bench::run_rt_sweep(base, jobs, args.seed, /*barrier=*/false,
                          args.threads);

  std::printf("\n%10s %8s %14s %14s %10s\n", "period", "slice%",
              "with barrier", "w/o barrier", "speedup");
  int wins = 0;
  int total = 0;
  double best90 = 1e300;
  bool all_ok = true;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const bench::BspPoint& with = with_pts[i];
    const bench::BspPoint& without = without_pts[i];
    all_ok = all_ok && with.ok && without.ok;
    const double speedup = static_cast<double>(with.time) /
                           static_cast<double>(without.time);
    std::printf("%7lld us %7d%% %11.2f ms %11.2f ms %9.3fx\n",
                (long long)(jobs[i].period / 1000), jobs[i].pct,
                static_cast<double>(with.time) / 1e6,
                static_cast<double>(without.time) / 1e6, speedup);
    ++total;
    if (speedup > 1.0) ++wins;
    if (jobs[i].pct == 90) {
      best90 = std::min(best90, static_cast<double>(without.time));
    }
  }
  auto ap = bench::run_aperiodic_point(base, args.seed, true);
  std::printf("%10s %8s %11.2f ms %14s\n", "aperiodic", "100%",
              static_cast<double>(ap.time) / 1e6, "(with barrier)");

  bench::shape_check("all configurations admitted and completed", all_ok);
  bench::shape_check("barrier removal helps in (almost) all configurations",
                     wins >= total * 3 / 4);
  bench::shape_check(
      "RT@90% without barriers within ~15% of aperiodic@100% with barriers",
      best90 < 1.15 * static_cast<double>(ap.time));
  return 0;
}
