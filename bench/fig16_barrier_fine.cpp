// Figure 16: benefit of barrier removal at the finest granularity.
//
// "Here, the benefit of barrier removal is much more pronounced, as
// Amdahl's law would suggest ... The benefit ranges from about 20% to over
// 300%.  ... the hard real-time cases, with barriers removed, can not just
// match [the aperiodic/100% with-barrier case's] performance, but in fact
// considerably exceed it."
#include "bsp_common.hpp"

int main(int argc, char** argv) {
  using namespace hrt;
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header(
      "Figure 16: barrier removal, finest granularity",
      "gains of ~20%..300%; RT without barriers beats aperiodic@100% with "
      "barriers");

  const std::uint32_t p = args.full ? 255 : 64;
  const auto base = bench::fine_cfg(p, args.full);
  const auto periods = bench::throttle_periods(args.full);

  const auto jobs = bench::sweep_jobs(periods, 30, 90, args.full ? 10 : 30);
  const auto with_pts =
      bench::run_rt_sweep(base, jobs, args.seed, /*barrier=*/true,
                          args.threads);
  const auto without_pts =
      bench::run_rt_sweep(base, jobs, args.seed, /*barrier=*/false,
                          args.threads);

  std::printf("\n%10s %8s %14s %14s %10s\n", "period", "slice%",
              "with barrier", "w/o barrier", "speedup");
  double best_speedup = 0.0;
  double worst_speedup = 1e300;
  double best_time = 1e300;
  bool all_ok = true;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const bench::BspPoint& with = with_pts[i];
    const bench::BspPoint& without = without_pts[i];
    all_ok = all_ok && with.ok && without.ok;
    const double speedup = static_cast<double>(with.time) /
                           static_cast<double>(without.time);
    std::printf("%7lld us %7d%% %11.2f ms %11.2f ms %9.3fx\n",
                (long long)(jobs[i].period / 1000), jobs[i].pct,
                static_cast<double>(with.time) / 1e6,
                static_cast<double>(without.time) / 1e6, speedup);
    best_speedup = std::max(best_speedup, speedup);
    worst_speedup = std::min(worst_speedup, speedup);
    best_time = std::min(best_time, static_cast<double>(without.time));
  }
  auto ap = bench::run_aperiodic_point(base, args.seed, true);
  std::printf("%10s %8s %11.2f ms %14s\n", "aperiodic", "100%",
              static_cast<double>(ap.time) / 1e6, "(with barrier)");

  bench::shape_check("all configurations admitted and completed", all_ok);
  bench::shape_check("best gains pronounced (>= 1.5x; paper: up to >3x)",
                     best_speedup >= 1.5);
  bench::shape_check("gains everywhere (>= ~1.1x; paper: from ~20%)",
                     worst_speedup >= 1.05);
  bench::shape_check(
      "best RT-without-barrier run beats aperiodic@100% with barriers",
      best_time < static_cast<double>(ap.time));
  return 0;
}
