// Figure 6: local scheduler deadline miss rate on the Phi as a function of
// period (tau) and slice (sigma), with admission control off.
//
// "Once the period and slice are feasible given scheduler overhead, the
// miss rate is zero. ... the transition point, or the 'edge of feasibility'
// is for a period of about 10 us."
#include "missrate_common.hpp"

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header("Figure 6: deadline miss rate vs (tau, sigma) on Phi "
                "(admission control disabled); cells = miss rate %",
                "feasibility edge ~10 us; feasible combinations miss 0%");
  auto points = bench::run_sweep(hrt::hw::MachineSpec::phi(), args,
                                 /*print_rate=*/true);

  bool feasible_zero = true;   // large periods, modest slices: no misses
  bool infeasible_high = false;  // tiny period, fat slice: ~100%
  for (const auto& p : points) {
    if (p.period >= hrt::sim::micros(100) && p.slice_pct <= 70 &&
        p.miss_rate > 0.01) {
      feasible_zero = false;
    }
    if (p.period == hrt::sim::micros(10) && p.slice_pct >= 60 &&
        p.miss_rate > 0.9) {
      infeasible_high = true;
    }
  }
  bench::shape_check("feasible region (tau >= 100us, sigma <= 70%) misses ~0%",
                     feasible_zero);
  bench::shape_check("infeasible region (tau = 10us, fat slices) misses ~100%",
                     infeasible_high);
  return 0;
}
