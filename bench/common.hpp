// Shared helpers for the figure-regeneration benchmarks.
//
// Every bench binary is self-contained: it prints the paper figure it
// regenerates, the rows/series of that figure, and a short "shape check"
// comparing the qualitative result with the paper's claim.  Pass --full for
// paper-scale sweeps; the default is a quick mode suitable for CI.
//
// Parallel sweeps: parameter points in a figure sweep are independent
// simulations, so `parallel_for_index` shards them across host cores via
// the shared sim::WorkerPool (the same pool class that drives the
// ShardedEngine's stage/commit phases) with dynamic index claiming.  Each
// point runs with the same seed it would get serially and results land in
// an order-preserving array, so output is bit-identical to a `--threads=1`
// run.
//
// Machine-readable output: pass --json=PATH to binaries that support it to
// get a JSON record of the run (see docs/PERFORMANCE.md for the schema and
// bench/run_perf.sh for the single command that regenerates the committed
// perf snapshots).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "rt/system.hpp"
#include "sim/worker_pool.hpp"

namespace bench {

struct Args {
  bool full = false;
  std::uint64_t seed = 42;
  unsigned threads = 0;     // 0 = one worker per host core
  std::string json;         // --json=PATH: machine-readable results
};

inline Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) a.full = true;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      a.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      a.threads = static_cast<unsigned>(
          std::strtoul(argv[i] + 10, nullptr, 10));
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) a.json = argv[i] + 7;
  }
  if (a.threads == 0) {
    a.threads = std::max(1u, std::thread::hardware_concurrency());
  }
  return a;
}

inline void header(const char* fig, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", fig);
  std::printf("paper: %s\n", claim);
  std::printf("==============================================================\n");
}

inline double to_cycles(const hrt::hw::MachineSpec& spec, hrt::sim::Nanos ns) {
  return static_cast<double>(spec.freq.ns_to_cycles(ns));
}

/// PASS/FAIL line for the qualitative shape check.
inline void shape_check(const char* what, bool ok) {
  std::printf("[shape %s] %s\n", ok ? "PASS" : "FAIL", what);
}

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Run fn(0) .. fn(n-1) across `threads` workers (the shared
/// sim::WorkerPool, dynamic index claiming).  Blocks until every index
/// completed.  The first exception thrown by any worker is rethrown on the
/// caller's thread.
template <typename Fn>
void parallel_for_index(std::size_t n, unsigned threads, Fn&& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  hrt::sim::WorkerPool pool(
      static_cast<unsigned>(std::min<std::size_t>(threads, n)));
  pool.parallel_for(n, [&fn](std::size_t i) { fn(i); });
}

/// Provenance object stamped into every BENCH_*.json by
/// JsonObject::write_file: host core count, compiler, the effective build
/// flags (HRT_BUILD_FLAGS, injected by bench/CMakeLists.txt), and the git
/// SHA that bench/run_perf.sh exports as HRT_GIT_SHA.  Snapshots from
/// different machines or builds are then self-describing
/// (docs/PERFORMANCE.md).
inline std::string env_json() {
  std::string out = "{\"host_cores\": ";
  out += std::to_string(std::thread::hardware_concurrency());
  out += ", \"compiler\": \"";
#if defined(__clang__)
  out += __VERSION__;  // clang's __VERSION__ already names the compiler
#elif defined(__GNUC__)
  out += "gcc ";
  out += __VERSION__;
#else
  out += "unknown";
#endif
  out += "\", \"build_flags\": \"";
#ifdef HRT_BUILD_FLAGS
  out += HRT_BUILD_FLAGS;
#endif
  out += "\", \"git_sha\": \"";
  const char* sha = std::getenv("HRT_GIT_SHA");
  out += (sha != nullptr && *sha != '\0') ? sha : "unknown";
  out += "\"}";
  return out;
}

/// Minimal JSON object writer: flat string/number fields plus raw nested
/// values.  Enough for the bench snapshot schema; not a general serializer.
class JsonObject {
 public:
  void field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    raw(key, buf);
  }
  void field(const std::string& key, std::uint64_t value) {
    raw(key, std::to_string(value));
  }
  void field(const std::string& key, const std::string& value) {
    raw(key, "\"" + value + "\"");
  }
  /// `value` must already be valid JSON (e.g. a nested object).
  void raw(const std::string& key, const std::string& value) {
    parts_.push_back("\"" + key + "\": " + value);
  }

  [[nodiscard]] std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      if (i > 0) out += ", ";
      out += parts_[i];
    }
    out += "}";
    return out;
  }

  /// Writes the object with an "env" provenance field appended (see
  /// env_json()); every committed BENCH_*.json records where it came from.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::string s = str();
    s.pop_back();  // drop the closing '}'
    if (!parts_.empty()) s += ", ";
    s += "\"env\": " + env_json() + "}\n";
    std::fwrite(s.data(), 1, s.size(), f);
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::string> parts_;
};

}  // namespace bench
