// Shared helpers for the figure-regeneration benchmarks.
//
// Every bench binary is self-contained: it prints the paper figure it
// regenerates, the rows/series of that figure, and a short "shape check"
// comparing the qualitative result with the paper's claim.  Pass --full for
// paper-scale sweeps; the default is a quick mode suitable for CI.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "rt/system.hpp"

namespace bench {

struct Args {
  bool full = false;
  std::uint64_t seed = 42;
};

inline Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) a.full = true;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      a.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
  }
  return a;
}

inline void header(const char* fig, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", fig);
  std::printf("paper: %s\n", claim);
  std::printf("==============================================================\n");
}

inline double to_cycles(const hrt::hw::MachineSpec& spec, hrt::sim::Nanos ns) {
  return static_cast<double>(spec.freq.ns_to_cycles(ns));
}

/// PASS/FAIL line for the qualitative shape check.
inline void shape_check(const char* what, bool ok) {
  std::printf("[shape %s] %s\n", ok ? "PASS" : "FAIL", what);
}

}  // namespace bench
