// Ablation (section 8 future work): running the same periodic task set
// under the dynamic eager-EDF scheduler vs a statically constructed cyclic
// executive.
//
// "We are also exploring compiling parallel programs directly into cyclic
// executives, providing real-time behavior by static construction."  The
// executive decides nothing at run time (a table walk instead of queue
// management), so its scheduling passes are cheaper — at the price of
// admitting only constraint sets the builder can compile, with no sporadic
// or dynamic admission.
#include "common.hpp"
#include "rt/ce_scheduler.hpp"

using namespace hrt;

namespace {

struct Outcome {
  double cpu_share_a;       // delivered share of slot/thread A
  double cpu_share_b;
  double pass_cycles_mean;  // cost of one scheduling pass
  std::uint64_t passes;
  std::uint64_t misses;
};

const std::vector<rt::PeriodicTask> kTasks = {
    {sim::micros(100), sim::micros(30), 0},
    {sim::micros(200), sim::micros(50), 0},
};

Outcome run_edf(std::uint64_t seed, sim::Nanos horizon) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(2);
  o.spec.smi.enabled = false;
  o.seed = seed;
  System sys(std::move(o));
  sys.boot();
  std::vector<nk::Thread*> threads;
  for (const auto& task : kTasks) {
    auto b = std::make_unique<nk::FnBehavior>(
        [c = rt::Constraints::periodic(sim::millis(1), task.period,
                                       task.slice)](nk::ThreadCtx&,
                                                    std::uint64_t step) {
          if (step == 0) return nk::Action::change_constraints(c);
          return nk::Action::compute(sim::micros(10));
        });
    threads.push_back(sys.spawn("t", std::move(b), 1, 10));
  }
  sys.run_for(horizon);
  sys.sync_accounting();
  const auto& oh = sys.kernel().executor(1).overheads();
  return Outcome{
      static_cast<double>(threads[0]->total_cpu_ns) /
          static_cast<double>(horizon),
      static_cast<double>(threads[1]->total_cpu_ns) /
          static_cast<double>(horizon),
      oh.pass.mean(), oh.passes,
      threads[0]->rt.misses + threads[1]->rt.misses};
}

Outcome run_ce(std::uint64_t seed, sim::Nanos horizon) {
  auto ce = rt::CyclicExecutiveBuilder::build(kTasks);
  hw::MachineSpec spec = hw::MachineSpec::phi_small(2);
  spec.smi.enabled = false;
  hw::Machine m(spec, seed);
  nk::Kernel::Options ko;
  ko.scheduler_factory = rt::CyclicExecutiveScheduler::factory(*ce, kTasks);
  nk::Kernel k(m, std::move(ko));
  k.boot();
  std::vector<nk::Thread*> threads;
  for (const auto& task : kTasks) {
    auto b = std::make_unique<nk::FnBehavior>(
        [c = rt::Constraints::periodic(0, task.period, task.slice)](
            nk::ThreadCtx&, std::uint64_t step) {
          if (step == 0) return nk::Action::change_constraints(c);
          return nk::Action::compute(sim::micros(10));
        });
    threads.push_back(k.create_thread("t", std::move(b), 1));
  }
  m.engine().run_until(horizon);
  k.executor(1).sync_run_span();
  const auto& oh = k.executor(1).overheads();
  return Outcome{static_cast<double>(threads[0]->total_cpu_ns) /
                     static_cast<double>(horizon),
                 static_cast<double>(threads[1]->total_cpu_ns) /
                     static_cast<double>(horizon),
                 oh.pass.mean(), oh.passes, 0};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  bench::header(
      "Ablation: eager EDF vs compiled cyclic executive "
      "(tasks: 30us/100us + 50us/200us on one Phi CPU)",
      "static construction trades dynamic admission for cheaper passes "
      "while delivering the same shares");

  const sim::Nanos horizon =
      args.full ? sim::seconds(2) : sim::millis(200);
  Outcome edf = run_edf(args.seed, horizon);
  Outcome ce = run_ce(args.seed, horizon);

  std::printf("\n%-22s %10s %10s %12s %10s %8s\n", "scheduler", "share A",
              "share B", "pass (cyc)", "passes", "misses");
  std::printf("%-22s %9.1f%% %9.1f%% %12.0f %10llu %8llu\n", "eager EDF",
              edf.cpu_share_a * 100, edf.cpu_share_b * 100,
              edf.pass_cycles_mean, (unsigned long long)edf.passes,
              (unsigned long long)edf.misses);
  std::printf("%-22s %9.1f%% %9.1f%% %12.0f %10llu %8llu\n",
              "cyclic executive", ce.cpu_share_a * 100, ce.cpu_share_b * 100,
              ce.pass_cycles_mean, (unsigned long long)ce.passes,
              (unsigned long long)ce.misses);

  // Semantics differ: EDF's budget accounting delivers the full slice of
  // *execution* (overhead is outside the budget); a cyclic executive's
  // frame entries are *wall-clock* windows, so the per-segment scheduler
  // pass comes out of the entry.  Both deliver the intended share within
  // the per-segment overhead.
  bench::shape_check("EDF delivers sigma exactly (A ~30%, B ~25%)",
                     std::abs(edf.cpu_share_a - 0.30) < 0.015 &&
                         std::abs(edf.cpu_share_b - 0.25) < 0.015);
  bench::shape_check(
      "executive delivers its windows minus per-segment overhead",
      ce.cpu_share_a > 0.25 && ce.cpu_share_a <= 0.305 &&
          ce.cpu_share_b > 0.21 && ce.cpu_share_b <= 0.255);
  bench::shape_check("cyclic executive passes are cheaper",
                     ce.pass_cycles_mean < 0.7 * edf.pass_cycles_mean);
  bench::shape_check("no deadline misses in either", edf.misses == 0);
  return 0;
}
